/** @file Tests for the analytic timing model. */

#include <gtest/gtest.h>

#include "sim/timing_model.h"

namespace figlut {
namespace {

GemmShape
shape(std::size_t m, std::size_t n, std::size_t b, int q)
{
    GemmShape s;
    s.m = m;
    s.n = n;
    s.batch = b;
    s.weightBits = q;
    return s;
}

HwConfig
hw(EngineKind e, int fixed = 4)
{
    HwConfig h;
    h.engine = e;
    h.fixedWeightBits = fixed;
    return h;
}

TEST(TileWalk, FpeSingleTile)
{
    const auto w = tileWalk(hw(EngineKind::FPE), shape(64, 64, 32, 4));
    EXPECT_EQ(w.tilesM, 1u);
    EXPECT_EQ(w.tilesK, 1u);
    EXPECT_DOUBLE_EQ(w.fillCycles, 126.0); // 64 + 64 - 2
    EXPECT_DOUBLE_EQ(w.computeCycles, 32.0 + 126.0);
}

TEST(TileWalk, FpeTileCounts)
{
    const auto w = tileWalk(hw(EngineKind::FPE),
                            shape(200, 130, 8, 4));
    EXPECT_EQ(w.tilesM, 4u); // ceil(200/64)
    EXPECT_EQ(w.tilesK, 3u); // ceil(130/64)
}

TEST(TileWalk, IfpuPlaneDimensionActsAsKCapacity)
{
    // q=4: N*q binary columns over 256-lane tiles.
    const auto w4 = tileWalk(hw(EngineKind::IFPU),
                             shape(64, 256, 16, 4));
    EXPECT_EQ(w4.tilesK, 4u); // 256*4/256
    // q=2 halves the binary columns -> half the tiles.
    const auto w2 = tileWalk(hw(EngineKind::IFPU),
                             shape(64, 256, 16, 2));
    EXPECT_EQ(w2.tilesK, 2u);
    // q=8 doubles them.
    const auto w8 = tileWalk(hw(EngineKind::IFPU),
                             shape(64, 256, 16, 8));
    EXPECT_EQ(w8.tilesK, 8u);
}

TEST(TileWalk, FiglutCoversSameTileAsIfpu)
{
    // 2 rows * 32 RACs = 64 outputs; 16 cols * mu 4 * 4 planes = 256
    // binary columns: identical tile counts to iFPU.
    const auto fig = tileWalk(hw(EngineKind::FIGLUT_I),
                              shape(512, 1024, 32, 4));
    const auto ifpu = tileWalk(hw(EngineKind::IFPU),
                               shape(512, 1024, 32, 4));
    EXPECT_EQ(fig.tilesM, ifpu.tilesM);
    EXPECT_EQ(fig.tilesK, ifpu.tilesK);
}

TEST(TileWalk, FiglutShallowerFill)
{
    const auto fig = tileWalk(hw(EngineKind::FIGLUT_I),
                              shape(64, 256, 32, 4));
    const auto ifpu = tileWalk(hw(EngineKind::IFPU),
                               shape(64, 256, 32, 4));
    EXPECT_LT(fig.fillCycles, ifpu.fillCycles);
}

TEST(TileWalk, BitSerialCyclesScaleWithQ)
{
    // Large shape so rounding is negligible: cycles ~ q.
    const auto c2 = tileWalk(hw(EngineKind::FIGLUT_I),
                             shape(4096, 4096, 32, 2)).computeCycles;
    const auto c4 = tileWalk(hw(EngineKind::FIGLUT_I),
                             shape(4096, 4096, 32, 4)).computeCycles;
    const auto c8 = tileWalk(hw(EngineKind::FIGLUT_I),
                             shape(4096, 4096, 32, 8)).computeCycles;
    // Slightly under 2x because the per-M-pass fill is q-independent.
    EXPECT_NEAR(c4 / c2, 2.0, 0.05);
    EXPECT_NEAR(c8 / c4, 2.0, 0.05);
}

TEST(TileWalk, FixedEnginesInsensitiveToSubFourQ)
{
    const auto c2 = tileWalk(hw(EngineKind::FIGNA),
                             shape(1024, 1024, 32, 2)).computeCycles;
    const auto c4 = tileWalk(hw(EngineKind::FIGNA),
                             shape(1024, 1024, 32, 4)).computeCycles;
    EXPECT_DOUBLE_EQ(c2, c4);
}

TEST(Timing, ComputeBoundWhenTrafficSmall)
{
    const auto t = gemmTiming(hw(EngineKind::FPE),
                              shape(256, 256, 64, 4), 1024.0);
    EXPECT_GT(t.computeCycles, t.dramCycles);
    EXPECT_GE(t.totalCycles, t.computeCycles);
}

TEST(Timing, MemoryBoundWhenTrafficHuge)
{
    const auto t = gemmTiming(hw(EngineKind::FPE),
                              shape(64, 64, 1, 4), 1e9);
    EXPECT_GT(t.dramCycles, t.computeCycles);
    EXPECT_GE(t.totalCycles, t.dramCycles);
}

TEST(Timing, UtilizationBounded)
{
    const auto t = gemmTiming(hw(EngineKind::FIGLUT_I),
                              shape(4096, 4096, 32, 4), 1e6);
    EXPECT_GT(t.utilization, 0.0);
    EXPECT_LE(t.utilization, 1.0);
}

TEST(Timing, LargerBatchImprovesUtilization)
{
    // Fill cycles amortize over the batch (the paper's low-batch
    // effective-TOPS effect in Table V); large batches approach peak.
    const auto small = gemmTiming(hw(EngineKind::FIGNA),
                                  shape(4096, 4096, 1, 4), 0.0);
    const auto large = gemmTiming(hw(EngineKind::FIGNA),
                                  shape(4096, 4096, 64, 4), 0.0);
    EXPECT_GT(large.utilization, 2.0 * small.utilization);
    EXPECT_GT(large.utilization, 0.9);
    EXPECT_LT(small.utilization, 0.5);
}

TEST(Timing, SecondsFollowFrequency)
{
    auto h = hw(EngineKind::FPE);
    const auto s = shape(64, 64, 32, 4);
    const auto base = gemmTiming(h, s, 0.0);
    h.tech.freqMhz = 200.0;
    const auto fast = gemmTiming(h, s, 0.0);
    EXPECT_NEAR(base.seconds / fast.seconds, 2.0, 1e-9);
}

} // namespace
} // namespace figlut
