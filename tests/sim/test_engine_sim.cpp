/** @file Tests for the composed engine simulator (paper-shape level). */

#include <gtest/gtest.h>

#include "sim/engine_sim.h"

namespace figlut {
namespace {

GemmShape
optLayerShape(int q = 4, std::size_t batch = 32)
{
    // OPT-6.7B FC1-like layer.
    GemmShape s;
    s.m = 16384;
    s.n = 4096;
    s.batch = batch;
    s.weightBits = q;
    return s;
}

HwConfig
hw(EngineKind e, ActFormat fmt = ActFormat::FP16, int fixed = 4)
{
    HwConfig h;
    h.engine = e;
    h.actFormat = fmt;
    h.fixedWeightBits = fixed;
    return h;
}

TEST(EngineSim, ResultFieldsConsistent)
{
    const auto r = simulateGemm(hw(EngineKind::FIGLUT_I),
                                optLayerShape());
    EXPECT_GT(r.timing.totalCycles, 0.0);
    EXPECT_GT(r.energy.totalFj(), 0.0);
    EXPECT_GT(r.powerW, 0.0);
    EXPECT_GT(r.effTops, 0.0);
    EXPECT_GT(r.topsPerWatt, 0.0);
    EXPECT_GT(r.areaMm2, 0.0);
    // TOPS/W == effTops / powerW by construction.
    EXPECT_NEAR(r.topsPerWatt, r.effTops / r.powerW,
                1e-9 * r.topsPerWatt);
}

TEST(EngineSim, TableVOrderingAtQ4)
{
    // The paper's headline ordering: FIGLUT-I > FIGNA > iFPU > FPE in
    // TOPS/W at Q4.
    const auto s = optLayerShape(4);
    const double fpe =
        simulateGemm(hw(EngineKind::FPE), s).topsPerWatt;
    const double ifpu =
        simulateGemm(hw(EngineKind::IFPU), s).topsPerWatt;
    const double figna =
        simulateGemm(hw(EngineKind::FIGNA), s).topsPerWatt;
    const double figlut_i =
        simulateGemm(hw(EngineKind::FIGLUT_I), s).topsPerWatt;
    const double figlut_f =
        simulateGemm(hw(EngineKind::FIGLUT_F), s).topsPerWatt;

    EXPECT_GT(figlut_i, figna);
    EXPECT_GT(figna, ifpu);
    EXPECT_GT(ifpu, fpe);
    // FIGLUT-F sits between FPE and FIGLUT-I.
    EXPECT_GT(figlut_f, fpe);
    EXPECT_LT(figlut_f, figlut_i);
}

TEST(EngineSim, TableVRatiosInPaperBallpark)
{
    // Paper Table V: FIGLUT 0.47 vs FIGNA 0.33 (1.42x) vs iFPU 0.21
    // (FIGNA/iFPU = 1.57x). Demand the right ballpark, not decimals.
    const auto s = optLayerShape(4);
    const double ifpu =
        simulateGemm(hw(EngineKind::IFPU), s).topsPerWatt;
    const double figna =
        simulateGemm(hw(EngineKind::FIGNA), s).topsPerWatt;
    const double figlut =
        simulateGemm(hw(EngineKind::FIGLUT_I), s).topsPerWatt;
    EXPECT_GT(figlut / figna, 1.15);
    EXPECT_LT(figlut / figna, 2.2);
    EXPECT_GT(figna / ifpu, 1.2);
    EXPECT_LT(figna / ifpu, 2.5);
}

TEST(EngineSim, BitSerialEfficiencyImprovesAsBitsShrink)
{
    // Fig. 16: TOPS/W grows as q drops for FIGLUT.
    const double q4 = simulateGemm(hw(EngineKind::FIGLUT_I),
                                   optLayerShape(4)).topsPerWatt;
    const double q3 = simulateGemm(hw(EngineKind::FIGLUT_I),
                                   optLayerShape(3)).topsPerWatt;
    const double q2 = simulateGemm(hw(EngineKind::FIGLUT_I),
                                   optLayerShape(2)).topsPerWatt;
    EXPECT_GT(q3, q4);
    EXPECT_GT(q2, q3);
}

TEST(EngineSim, FixedPrecisionFlatForSubFourBits)
{
    const double q4 = simulateGemm(hw(EngineKind::FIGNA),
                                   optLayerShape(4)).topsPerWatt;
    const double q2 = simulateGemm(hw(EngineKind::FIGNA),
                                   optLayerShape(2)).topsPerWatt;
    EXPECT_NEAR(q2 / q4, 1.0, 0.02);
}

TEST(EngineSim, HeadlineQ3Claim)
{
    // "59% higher TOPS/W than FIGNA at the same 3-bit precision" —
    // accept a generous band around 1.59x.
    const double figna = simulateGemm(hw(EngineKind::FIGNA),
                                      optLayerShape(3)).topsPerWatt;
    const double figlut = simulateGemm(hw(EngineKind::FIGLUT_I),
                                       optLayerShape(3)).topsPerWatt;
    EXPECT_GT(figlut / figna, 1.3);
    EXPECT_LT(figlut / figna, 2.6);
}

TEST(EngineSim, Q8NeedsWideHardwareAndCostsMore)
{
    const auto s8 = optLayerShape(8);
    const double figna_q8 =
        simulateGemm(hw(EngineKind::FIGNA, ActFormat::FP16, 8), s8)
            .topsPerWatt;
    const double figna_q4 =
        simulateGemm(hw(EngineKind::FIGNA, ActFormat::FP16, 4),
                     optLayerShape(4)).topsPerWatt;
    EXPECT_LT(figna_q8, figna_q4);
    // Bit-serial engines take ~2x cycles at Q8.
    const auto fig_q8 = simulateGemm(hw(EngineKind::FIGLUT_I), s8);
    const auto fig_q4 = simulateGemm(hw(EngineKind::FIGLUT_I),
                                     optLayerShape(4));
    EXPECT_NEAR(fig_q8.timing.computeCycles /
                    fig_q4.timing.computeCycles,
                2.0, 0.05);
}

TEST(EngineSim, Fig13FiglutBeatsFignaPerArea)
{
    // TOPS/mm^2 at Q4/FP16: the paper reports up to ~1.5x.
    const auto s = optLayerShape(4);
    const double figna =
        simulateGemm(hw(EngineKind::FIGNA), s).topsPerMm2;
    const double figlut =
        simulateGemm(hw(EngineKind::FIGLUT_I), s).topsPerMm2;
    EXPECT_GT(figlut / figna, 1.05);
    EXPECT_LT(figlut / figna, 2.5);
}

TEST(EngineSim, DramEnergyVisibleInBreakdown)
{
    const auto r = simulateGemm(hw(EngineKind::FIGLUT_I),
                                optLayerShape());
    EXPECT_GT(r.energy.dramFj, 0.0);
    EXPECT_GT(r.energy.sramFj, 0.0);
    EXPECT_GT(r.energy.lutFj, 0.0);
    EXPECT_GT(r.energy.generatorFj, 0.0);
    // LUT generation stays a small fraction of total energy.
    EXPECT_LT(r.energy.generatorFj, 0.15 * r.energy.totalFj());
}

TEST(EngineSim, LutEnergyOnlyForFiglut)
{
    const auto s = optLayerShape();
    EXPECT_EQ(simulateGemm(hw(EngineKind::FPE), s).energy.lutFj, 0.0);
    EXPECT_EQ(simulateGemm(hw(EngineKind::FIGNA), s).energy.lutFj, 0.0);
    EXPECT_EQ(simulateGemm(hw(EngineKind::IFPU), s).energy.lutFj, 0.0);
    EXPECT_GT(simulateGemm(hw(EngineKind::FIGLUT_F), s).energy.lutFj,
              0.0);
}

TEST(EngineSim, LutImplAblationOrdering)
{
    // hFFLUT (paper) > FFLUT > RFLUT in engine-level TOPS/W.
    const auto s = optLayerShape(4);
    auto tops_w = [&](LutImpl impl) {
        HwConfig h = hw(EngineKind::FIGLUT_I);
        h.lutImpl = impl;
        return simulateGemm(h, s).topsPerWatt;
    };
    const double hfflut = tops_w(LutImpl::HFFLUT);
    const double fflut = tops_w(LutImpl::FFLUT);
    const double rflut = tops_w(LutImpl::RFLUT);
    EXPECT_GT(hfflut, fflut);
    EXPECT_GT(fflut, rflut);
    // RFLUT wrecks the design (the Fig. 6 conclusion, end to end).
    EXPECT_LT(rflut, 0.3 * hfflut);
}

TEST(EngineSim, MuSweepHasInteriorOptimum)
{
    // TOPS/W rises from mu=2, peaks near the paper's design point,
    // and falls again by mu=6 (table + generator growth).
    const auto s = optLayerShape(4);
    auto tops_w = [&](int mu) {
        HwConfig h = hw(EngineKind::FIGLUT_I);
        h.mu = mu;
        return simulateGemm(h, s).topsPerWatt;
    };
    const double m2 = tops_w(2);
    const double m4 = tops_w(4);
    const double m6 = tops_w(6);
    EXPECT_GT(m4, m2);
    EXPECT_GT(m4, m6);
}

TEST(EngineSim, MpuConfigMapping)
{
    HwConfig h = hw(EngineKind::FIGLUT_I, ActFormat::BF16, 8);
    h.mu = 4;
    h.k = 32;
    const auto mpu = mpuConfigFor(h);
    EXPECT_EQ(mpu.engine, EngineKind::FIGLUT_I);
    EXPECT_EQ(mpu.actFormat, ActFormat::BF16);
    EXPECT_EQ(mpu.weightBits, 8);
    EXPECT_EQ(mpu.mu, 4);
    EXPECT_EQ(mpu.k, 32);
}

} // namespace
} // namespace figlut
