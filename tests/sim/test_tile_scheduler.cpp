/** @file Tests for the Fig. 5 weight-tile fetch sequencing. */

#include <gtest/gtest.h>

#include <set>

#include "sim/tile_scheduler.h"

namespace figlut {
namespace {

GemmShape
shape(std::size_t m, std::size_t n, int q)
{
    GemmShape s;
    s.m = m;
    s.n = n;
    s.batch = 8;
    s.weightBits = q;
    return s;
}

HwConfig
hw(EngineKind e, int fixed = 4)
{
    HwConfig h;
    h.engine = e;
    h.fixedWeightBits = fixed;
    return h;
}

TEST(TileScheduler, FpIntWalkHasSinglePlane)
{
    // Fig. 5a: FPE/FIGNA fetch one multi-bit tile per position.
    const auto seq = tileFetchSequence(hw(EngineKind::FIGNA),
                                       shape(128, 128, 4));
    EXPECT_EQ(seq.size(), 2u * 2u); // 128/64 x 128/64
    for (const auto &f : seq)
        EXPECT_EQ(f.plane, 0);
}

TEST(TileScheduler, FpIntOrderIsKMajorWithinMPass)
{
    const auto seq = tileFetchSequence(hw(EngineKind::FPE),
                                       shape(128, 192, 4));
    ASSERT_EQ(seq.size(), 2u * 3u);
    // First M pass covers k = 0,1,2 in order, then the next M tile.
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(seq[i].mTile, 0u);
        EXPECT_EQ(seq[i].kTile, i);
    }
    EXPECT_EQ(seq[3].mTile, 1u);
    EXPECT_EQ(seq[3].kTile, 0u);
}

TEST(TileScheduler, BcqQ8IteratesPlaneGroupsFirst)
{
    // Fig. 5b: at each position, the next bit-plane group is loaded
    // before advancing to the next K tile. q=8 on a 4-plane array
    // needs 2 groups per position.
    const auto cfg = hw(EngineKind::FIGLUT_I);
    const auto s = shape(64, 256, 8);
    EXPECT_EQ(planeGroupsPerTile(cfg, s), 2);
    const auto seq = tileFetchSequence(cfg, s);
    ASSERT_GE(seq.size(), 2u);
    // Consecutive fetches at the same (m, k) with ascending plane.
    EXPECT_EQ(seq[0].mTile, seq[1].mTile);
    EXPECT_EQ(seq[0].kTile, seq[1].kTile);
    EXPECT_EQ(seq[0].plane, 0);
    EXPECT_EQ(seq[1].plane, 1);
    // Then the K tile advances.
    if (seq.size() > 2) {
        EXPECT_EQ(seq[2].plane, 0);
    }
}

TEST(TileScheduler, QFourFitsInOneGroup)
{
    const auto cfg = hw(EngineKind::IFPU);
    EXPECT_EQ(planeGroupsPerTile(cfg, shape(64, 256, 4)), 1);
    EXPECT_EQ(planeGroupsPerTile(cfg, shape(64, 256, 2)), 1);
    EXPECT_EQ(planeGroupsPerTile(cfg, shape(64, 256, 8)), 2);
}

TEST(TileScheduler, SequenceCoversEveryPositionOnce)
{
    for (const auto e : {EngineKind::FPE, EngineKind::FIGLUT_I}) {
        const auto seq =
            tileFetchSequence(hw(e), shape(200, 300, 8 /*q*/ == 8 &&
                                           e == EngineKind::FPE
                                               ? 4 : 4));
        std::set<std::tuple<std::size_t, std::size_t, int>> seen;
        for (const auto &f : seq)
            EXPECT_TRUE(
                seen.insert({f.mTile, f.kTile, f.plane}).second);
        EXPECT_EQ(seen.size(), seq.size());
    }
}

TEST(TileScheduler, SequenceLengthMatchesTileWalk)
{
    // The explicit sequence and the analytic walk agree on total
    // fetch count (the plane dimension folded either way).
    const auto cfg = hw(EngineKind::FIGLUT_I);
    const auto s = shape(512, 1024, 8);
    const auto walk = tileWalk(cfg, s);
    const auto seq = tileFetchSequence(cfg, s);
    EXPECT_EQ(seq.size(), walk.tilesM * walk.tilesK);
}

} // namespace
} // namespace figlut
