/** @file Tests for the whole-accelerator system model. */

#include <gtest/gtest.h>

#include "model/opt_family.h"
#include "model/workload.h"
#include "sim/accelerator.h"

namespace figlut {
namespace {

HwConfig
hw(EngineKind e = EngineKind::FIGLUT_I)
{
    HwConfig h;
    h.engine = e;
    return h;
}

TEST(Accelerator, RunGemmDelegates)
{
    Accelerator acc(hw());
    GemmShape s;
    s.m = 256;
    s.n = 256;
    s.batch = 8;
    const auto direct = simulateGemm(hw(), s);
    const auto via = acc.runGemm(s);
    EXPECT_DOUBLE_EQ(via.timing.totalCycles, direct.timing.totalCycles);
    EXPECT_DOUBLE_EQ(via.energy.totalFj(), direct.energy.totalFj());
}

TEST(Accelerator, WorkloadAggregatesKernels)
{
    Accelerator acc(hw());
    GemmShape s;
    s.m = 128;
    s.n = 128;
    s.batch = 4;
    std::vector<KernelTask> tasks = {
        KernelTask::makeGemm("a", s),
        KernelTask::makeVector("v", residualOps(512)),
        KernelTask::makeGemm("b", s),
    };
    const auto result = acc.runWorkload(tasks);
    EXPECT_EQ(result.gemmResults.size(), 2u);
    EXPECT_GT(result.vpuCycles, 0.0);
    EXPECT_NEAR(result.totalCycles,
                result.gemmCycles + result.vpuCycles, 1e-9);
    EXPECT_GT(result.axiBytes, 0.0);
    EXPECT_GT(result.effTops, 0.0);
    EXPECT_GT(result.powerW, 0.0);
}

TEST(Accelerator, EmptyWorkloadThrows)
{
    Accelerator acc(hw());
    EXPECT_THROW(acc.runWorkload({}), FatalError);
}

TEST(Accelerator, InvalidConfigThrowsAtConstruction)
{
    HwConfig bad = hw();
    bad.mu = 1;
    EXPECT_THROW(Accelerator{bad}, FatalError);
}

TEST(Accelerator, DecodeStepGemmsDominateRuntime)
{
    // The paper's premise: GEMM dominates LLM inference. Weight GEMMs
    // scale with hidden^2 while decode attention scales with
    // batch*ctx*hidden, so the premise holds from ~1B upward.
    const auto &model = optByName("OPT-1.3B");
    WorkloadOptions opts;
    opts.batch = 16;
    opts.contextLen = 128;
    Accelerator acc(hw());
    const auto result = acc.runWorkload(decodeStepWorkload(model, opts));
    EXPECT_GT(result.gemmCycles, 2.0 * result.vpuCycles);
}

TEST(Accelerator, AxiTrafficMatchesActivationsAndOutputs)
{
    Accelerator acc(hw());
    GemmShape s;
    s.m = 100;
    s.n = 200;
    s.batch = 2;
    const auto result = acc.runWorkload({KernelTask::makeGemm("g", s)});
    // FP16: (n + m) * batch * 2 bytes.
    EXPECT_DOUBLE_EQ(result.axiBytes, (200.0 + 100.0) * 2 * 2);
}

} // namespace
} // namespace figlut
