/** @file Tests for the VPU op-count and energy models. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/vpu.h"

namespace figlut {
namespace {

const TechParams &tech = TechParams::default28nm();

TEST(Vpu, SoftmaxScalesWithElements)
{
    const auto small = softmaxOps(4, 128);
    const auto large = softmaxOps(4, 256);
    EXPECT_NEAR(large.total() / small.total(), 2.0, 0.05);
    EXPECT_GT(small.specials, 0.0);
}

TEST(Vpu, LayerNormCounts)
{
    const auto ops = layerNormOps(2, 100);
    EXPECT_DOUBLE_EQ(ops.adds, 2.0 * 300.0);
    EXPECT_DOUBLE_EQ(ops.muls, 2.0 * 200.0);
    EXPECT_DOUBLE_EQ(ops.specials, 2.0);
}

TEST(Vpu, GeluAndResidual)
{
    const auto g = geluOps(10);
    EXPECT_DOUBLE_EQ(g.specials, 10.0);
    const auto r = residualOps(10);
    EXPECT_DOUBLE_EQ(r.adds, 10.0);
    EXPECT_DOUBLE_EQ(r.total(), 10.0);
}

TEST(Vpu, MergeAccumulates)
{
    VpuOpCounts a = residualOps(5);
    a.merge(geluOps(2));
    EXPECT_DOUBLE_EQ(a.adds, 5.0 + 4.0);
    EXPECT_DOUBLE_EQ(a.specials, 2.0);
}

TEST(Vpu, EnergyWeightsSpecialsHigher)
{
    VpuOpCounts adds_only;
    adds_only.adds = 10;
    VpuOpCounts specials_only;
    specials_only.specials = 10;
    EXPECT_GT(vpuEnergyFj(specials_only, tech),
              4.0 * vpuEnergyFj(adds_only, tech));
}

TEST(Vpu, CyclesRespectLanes)
{
    VpuOpCounts ops;
    ops.adds = 640;
    EXPECT_DOUBLE_EQ(vpuCycles(ops, 64), 10.0);
    EXPECT_DOUBLE_EQ(vpuCycles(ops, 128), 5.0);
    ops.specials = 64; // 4 lane-cycles each
    EXPECT_DOUBLE_EQ(vpuCycles(ops, 64), 14.0);
}

TEST(Vpu, ZeroLanesPanics)
{
    VpuOpCounts ops;
    EXPECT_THROW(vpuCycles(ops, 0), PanicError);
}

} // namespace
} // namespace figlut
