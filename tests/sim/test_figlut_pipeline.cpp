/** @file Tests for the cycle-stepped FIGLUT PE pipeline. */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/figlut_pipeline.h"

namespace figlut {
namespace {

struct Tile
{
    std::vector<Matrix<uint8_t>> planes;
    std::vector<int64_t> acts;
};

Tile
randomTile(const FiglutPipelineConfig &cfg, std::size_t chunks,
           uint64_t seed)
{
    Rng rng(seed);
    Tile tile;
    const std::size_t cols = chunks * static_cast<std::size_t>(cfg.mu);
    tile.planes.assign(static_cast<std::size_t>(cfg.planes),
                       Matrix<uint8_t>(static_cast<std::size_t>(cfg.k),
                                       cols, 0));
    for (auto &plane : tile.planes)
        for (auto &bit : plane)
            bit = rng.flip() ? 1 : 0;
    tile.acts.resize(cols);
    for (auto &a : tile.acts)
        a = rng.uniformInt(-100000, 100000);
    return tile;
}

/** Reference: plane-serial signed sums. */
Matrix<int64_t>
reference(const FiglutPipelineConfig &cfg, const Tile &tile)
{
    Matrix<int64_t> out(static_cast<std::size_t>(cfg.k),
                        static_cast<std::size_t>(cfg.planes), 0);
    for (std::size_t p = 0; p < out.cols(); ++p)
        for (std::size_t r = 0; r < out.rows(); ++r) {
            int64_t acc = 0;
            for (std::size_t c = 0; c < tile.acts.size(); ++c)
                acc += tile.planes[p](r, c) ? tile.acts[c]
                                            : -tile.acts[c];
            out(r, p) = acc;
        }
    return out;
}

TEST(FiglutPipeline, FunctionalMatchesReference)
{
    FiglutPipelineConfig cfg;
    cfg.mu = 4;
    cfg.k = 8;
    cfg.planes = 3;
    const auto tile = randomTile(cfg, 6, 6001);
    FiglutPipelineSim sim(cfg);
    const auto run = sim.runTile(tile.planes, tile.acts);
    EXPECT_TRUE(run.psums == reference(cfg, tile));
}

TEST(FiglutPipeline, CyclesMatchClosedForm)
{
    FiglutPipelineConfig cfg;
    cfg.generatorDepth = 2;
    for (const std::size_t chunks : {1u, 2u, 5u, 16u}) {
        const auto tile = randomTile(cfg, chunks, 6002 + chunks);
        FiglutPipelineSim sim(cfg);
        const auto run = sim.runTile(tile.planes, tile.acts);
        EXPECT_EQ(run.cycles,
                  FiglutPipelineSim::expectedCycles(
                      chunks, cfg.generatorDepth))
            << "chunks=" << chunks;
    }
}

TEST(FiglutPipeline, OneBuildPerChunkKReadsEach)
{
    FiglutPipelineConfig cfg;
    cfg.k = 16;
    cfg.planes = 4;
    const std::size_t chunks = 8;
    const auto tile = randomTile(cfg, chunks, 6003);
    FiglutPipelineSim sim(cfg);
    const auto run = sim.runTile(tile.planes, tile.acts);
    EXPECT_EQ(run.lutBuilds, chunks);
    // k RACs x planes read every table once: the conflict-free
    // concurrent-read property.
    EXPECT_EQ(run.lutReads, chunks * 16u * 4u);
}

/** Property sweep over mu and depth. */
struct PipeCase
{
    int mu;
    int depth;
};

class PipelineSweep : public ::testing::TestWithParam<PipeCase>
{};

TEST_P(PipelineSweep, FunctionalAndCycleExact)
{
    const auto param = GetParam();
    FiglutPipelineConfig cfg;
    cfg.mu = param.mu;
    cfg.k = 4;
    cfg.planes = 2;
    cfg.generatorDepth = param.depth;
    const std::size_t chunks = 5;
    const auto tile = randomTile(
        cfg, chunks,
        7000 + static_cast<uint64_t>(param.mu * 10 + param.depth));
    FiglutPipelineSim sim(cfg);
    const auto run = sim.runTile(tile.planes, tile.acts);
    EXPECT_TRUE(run.psums == reference(cfg, tile));
    EXPECT_EQ(run.cycles,
              FiglutPipelineSim::expectedCycles(chunks, param.depth));
}

INSTANTIATE_TEST_SUITE_P(
    MuDepth, PipelineSweep,
    ::testing::Values(PipeCase{2, 1}, PipeCase{2, 3}, PipeCase{4, 1},
                      PipeCase{4, 2}, PipeCase{4, 4}, PipeCase{6, 2},
                      PipeCase{8, 2}));

TEST(FiglutPipeline, LongerPipelineOnlyAddsLatency)
{
    FiglutPipelineConfig shallow;
    shallow.generatorDepth = 1;
    FiglutPipelineConfig deep = shallow;
    deep.generatorDepth = 6;
    const auto tile = randomTile(shallow, 10, 6004);
    const auto a = FiglutPipelineSim(shallow).runTile(tile.planes,
                                                      tile.acts);
    const auto b = FiglutPipelineSim(deep).runTile(tile.planes,
                                                   tile.acts);
    EXPECT_TRUE(a.psums == b.psums);
    EXPECT_EQ(b.cycles - a.cycles, 5u);
}

TEST(FiglutPipeline, InvalidInputsThrow)
{
    FiglutPipelineConfig cfg;
    FiglutPipelineSim sim(cfg);
    const auto tile = randomTile(cfg, 2, 6005);

    // Wrong plane count.
    auto fewer = tile.planes;
    fewer.pop_back();
    EXPECT_THROW(sim.runTile(fewer, tile.acts), FatalError);
    // Activation count not a multiple of mu.
    auto acts = tile.acts;
    acts.pop_back();
    EXPECT_THROW(sim.runTile(tile.planes, acts), FatalError);
    // Bad geometry.
    FiglutPipelineConfig bad;
    bad.mu = 1;
    EXPECT_THROW(FiglutPipelineSim{bad}, FatalError);
}

} // namespace
} // namespace figlut
