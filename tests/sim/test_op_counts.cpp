/** @file Tests for the per-engine operation profiles. */

#include <gtest/gtest.h>

#include "sim/op_counts.h"

namespace figlut {
namespace {

GemmShape
shape(std::size_t m, std::size_t n, std::size_t b, int q)
{
    GemmShape s;
    s.m = m;
    s.n = n;
    s.batch = b;
    s.weightBits = q;
    return s;
}

HwConfig
hw(EngineKind e)
{
    HwConfig h;
    h.engine = e;
    return h;
}

TEST(OpCounts, FpeMulAddPerMac)
{
    const auto s = shape(128, 128, 8, 4);
    const auto p = gemmOpProfile(hw(EngineKind::FPE), s);
    EXPECT_DOUBLE_EQ(p.fpMulOps, s.macs());
    EXPECT_DOUBLE_EQ(p.fpAddOps, s.macs());
    EXPECT_DOUBLE_EQ(p.dequantOps, 128.0 * 128.0);
    EXPECT_EQ(p.lutReads, 0.0);
    EXPECT_EQ(p.intMulOps, 0.0);
}

TEST(OpCounts, FignaIntegerMacs)
{
    const auto s = shape(128, 128, 8, 4);
    const auto p = gemmOpProfile(hw(EngineKind::FIGNA), s);
    EXPECT_DOUBLE_EQ(p.intMulOps, s.macs());
    EXPECT_EQ(p.intMulBitsA, 24); // FP16 aligned width
    EXPECT_EQ(p.intMulBitsB, 4);
    EXPECT_GT(p.prealignOps, 0.0);
    EXPECT_GT(p.i2fOps, 0.0);
    EXPECT_EQ(p.fpMulOps, 0.0);
}

TEST(OpCounts, IfpuAddsScaleWithQ)
{
    const auto p2 = gemmOpProfile(hw(EngineKind::IFPU),
                                  shape(64, 256, 4, 2));
    const auto p4 = gemmOpProfile(hw(EngineKind::IFPU),
                                  shape(64, 256, 4, 4));
    EXPECT_DOUBLE_EQ(p4.intAddOps, 2.0 * p2.intAddOps);
}

TEST(OpCounts, FiglutReadsReplaceMuAdds)
{
    const auto s = shape(64, 256, 4, 4);
    const auto ifpu = gemmOpProfile(hw(EngineKind::IFPU), s);
    const auto fig = gemmOpProfile(hw(EngineKind::FIGLUT_I), s);
    // One RAC read covers mu=4 binary adds.
    EXPECT_DOUBLE_EQ(fig.lutReads, ifpu.intAddOps / 4.0);
    EXPECT_DOUBLE_EQ(fig.intAddOps, fig.lutReads);
}

TEST(OpCounts, FiglutGeneratorAmortized)
{
    const auto s = shape(4096, 4096, 32, 4);
    const auto p = gemmOpProfile(hw(EngineKind::FIGLUT_I), s);
    // Generator adds must be far fewer than the adds they replace.
    EXPECT_LT(p.generatorAdds, 0.05 * s.macs() * 4);
    EXPECT_GT(p.generatorAdds, 0.0);
    EXPECT_GT(p.lutBuilds, 0.0);
    EXPECT_GT(p.lutWriteBits, 0.0);
}

TEST(OpCounts, FiglutFUsesFpRacs)
{
    const auto s = shape(64, 256, 4, 4);
    const auto p = gemmOpProfile(hw(EngineKind::FIGLUT_F), s);
    EXPECT_DOUBLE_EQ(p.fpAddOps, p.lutReads);
    EXPECT_EQ(p.intAddOps, 0.0);
    EXPECT_EQ(p.prealignOps, 0.0);
    EXPECT_EQ(p.lutValueBits, 32);
}

TEST(OpCounts, DramTrafficScalesWithQForBitSerial)
{
    const auto p2 = gemmOpProfile(hw(EngineKind::FIGLUT_I),
                                  shape(1024, 1024, 32, 2));
    const auto p4 = gemmOpProfile(hw(EngineKind::FIGLUT_I),
                                  shape(1024, 1024, 32, 4));
    // Weight planes dominate: traffic close to 2x (activations and
    // outputs are q-independent).
    EXPECT_GT(p4.traffic.dramBits, 1.6 * p2.traffic.dramBits);
}

TEST(OpCounts, FixedEnginePadsDramTraffic)
{
    // FIGNA must move padded 4-bit planes even for q=2 weights.
    const auto figna = gemmOpProfile(hw(EngineKind::FIGNA),
                                     shape(1024, 1024, 32, 2));
    const auto figlut = gemmOpProfile(hw(EngineKind::FIGLUT_I),
                                      shape(1024, 1024, 32, 2));
    EXPECT_GT(figna.traffic.dramBits, figlut.traffic.dramBits);
}

TEST(OpCounts, SramTrafficIncludesPsumSpills)
{
    // Multi-K-tile shapes spill partial sums.
    const auto one_tile = gemmOpProfile(hw(EngineKind::FPE),
                                        shape(64, 64, 8, 4));
    const auto many_tiles = gemmOpProfile(hw(EngineKind::FPE),
                                          shape(64, 1024, 8, 4));
    const double per_weight_bit_one =
        one_tile.traffic.sramReadBits / (64.0 * 64.0);
    const double per_weight_bit_many =
        many_tiles.traffic.sramReadBits / (64.0 * 1024.0);
    EXPECT_GT(per_weight_bit_many, per_weight_bit_one);
}

TEST(OpCounts, RegisterCyclesPositiveForAllEngines)
{
    const auto s = shape(256, 256, 8, 4);
    for (const auto e : kAllEngines) {
        const auto p = gemmOpProfile(hw(e), s);
        EXPECT_GT(p.registerBitCycles, 0.0) << engineName(e);
        EXPECT_GT(p.vpuOps, 0.0) << engineName(e);
    }
}

TEST(OpCounts, PeRegisterBitsOrdering)
{
    // iFPU's binary array carries the most pipeline state per lane;
    // FPE the least per MAC.
    HwConfig ifpu = hw(EngineKind::IFPU);
    HwConfig figlut = hw(EngineKind::FIGLUT_I);
    // Per binary lane: iFPU has ~full psum per PE; FIGLUT's psum is
    // shared across mu lanes.
    const double ifpu_bits_per_lane = peRegisterBits(ifpu);
    const double figlut_bits_per_lane =
        static_cast<double>(peRegisterBits(figlut)) / (32.0 * 4.0);
    EXPECT_GT(ifpu_bits_per_lane, figlut_bits_per_lane);
}

TEST(OpCounts, OffsetFreeShapesSkipVpuOffset)
{
    auto s = shape(64, 64, 4, 4);
    s.hasOffset = false;
    const auto without = gemmOpProfile(hw(EngineKind::FIGLUT_I), s);
    s.hasOffset = true;
    const auto with = gemmOpProfile(hw(EngineKind::FIGLUT_I), s);
    EXPECT_GT(with.vpuOps, without.vpuOps);
}

} // namespace
} // namespace figlut
