/** @file Tests for the synthetic data generators. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "model/synthetic.h"

namespace figlut {
namespace {

TEST(Synthetic, GaussianMatrixMoments)
{
    Rng rng(1001);
    const auto m = gaussianMatrix(100, 100, rng, 2.0, 0.5);
    double sum = 0.0, sq = 0.0;
    for (const double v : m) {
        sum += v;
        sq += v * v;
    }
    const double n = static_cast<double>(m.size());
    const double mean = sum / n;
    EXPECT_NEAR(mean, 2.0, 0.02);
    EXPECT_NEAR(sq / n - mean * mean, 0.25, 0.02);
}

TEST(Synthetic, WeightsHaveRowScaleVariation)
{
    Rng rng(1002);
    const auto w = syntheticWeights(64, 512, rng, 0.02, 0.8);
    // Per-row RMS should vary by much more than sampling noise.
    double min_rms = 1e30, max_rms = 0.0;
    for (std::size_t r = 0; r < w.rows(); ++r) {
        double sq = 0.0;
        for (std::size_t c = 0; c < w.cols(); ++c)
            sq += w(r, c) * w(r, c);
        const double rms = std::sqrt(sq / static_cast<double>(w.cols()));
        min_rms = std::min(min_rms, rms);
        max_rms = std::max(max_rms, rms);
    }
    EXPECT_GT(max_rms / min_rms, 3.0);
}

TEST(Synthetic, ActivationsHaveOutlierChannels)
{
    Rng rng(1003);
    const auto x = syntheticActivations(512, 64, rng, 0.05, 10.0);
    // Count rows whose RMS is several times the bulk.
    std::size_t outliers = 0;
    for (std::size_t r = 0; r < x.rows(); ++r) {
        double sq = 0.0;
        for (std::size_t c = 0; c < x.cols(); ++c)
            sq += x(r, c) * x(r, c);
        if (std::sqrt(sq / 64.0) > 5.0)
            ++outliers;
    }
    EXPECT_GT(outliers, 5u);
    EXPECT_LT(outliers, 60u);
}

TEST(Synthetic, ZeroOutlierRateGivesCleanBulk)
{
    Rng rng(1004);
    const auto x = syntheticActivations(256, 32, rng, 0.0, 10.0);
    for (const double v : x)
        EXPECT_LT(std::fabs(v), 8.0); // ~8 sigma bound
}

TEST(Synthetic, DeterministicForSameSeed)
{
    Rng a(7), b(7);
    const auto x = syntheticWeights(8, 8, a);
    const auto y = syntheticWeights(8, 8, b);
    EXPECT_TRUE(x == y);
}

TEST(Synthetic, EmptyShapesThrow)
{
    Rng rng(1005);
    EXPECT_THROW(gaussianMatrix(0, 4, rng), FatalError);
    EXPECT_THROW(syntheticWeights(4, 0, rng), FatalError);
    EXPECT_THROW(syntheticActivations(0, 0, rng), FatalError);
}

} // namespace
} // namespace figlut
