/** @file Tests for the perplexity reference data and proxy. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "model/ppl.h"

namespace figlut {
namespace {

TEST(PplReference, TableMatchesPaper)
{
    const auto &ref = pplReference("OPT-6.7B");
    EXPECT_DOUBLE_EQ(ref.fp16, 10.86);
    EXPECT_DOUBLE_EQ(ref.rtn4, 24.13);
    EXPECT_DOUBLE_EQ(ref.bcq4, 11.08);
    EXPECT_DOUBLE_EQ(ref.bcq3, 11.80);
}

TEST(PplReference, OrderingAcrossModels)
{
    // Bigger models quantize better: perplexities fall monotonically
    // from 1.3B to 30B in every column (350M's RTN is an outlier in
    // the paper's own table, matching it exactly).
    const auto &table = pplReferenceTable();
    for (std::size_t i = 2; i < table.size(); ++i) {
        EXPECT_LT(table[i].fp16, table[i - 1].fp16);
        EXPECT_LT(table[i].bcq4, table[i - 1].bcq4);
        EXPECT_LT(table[i].bcq3, table[i - 1].bcq3);
    }
}

TEST(PplReference, QuantizationAlwaysCostsPerplexity)
{
    for (const auto &row : pplReferenceTable()) {
        EXPECT_GT(row.bcq4, row.fp16);
        EXPECT_GT(row.bcq3, row.bcq4);
        EXPECT_GT(row.rtn4, row.bcq4); // RTN is the weak quantizer
    }
}

TEST(PplReference, UnknownModelThrows)
{
    EXPECT_THROW(pplReference("GPT-3"), FatalError);
}

TEST(TableIv, FiglutIDiffersOnlyAt13B)
{
    EXPECT_DOUBLE_EQ(tableIvPerplexity("OPT-13B", "FIGLUT-I"), 20.89);
    EXPECT_DOUBLE_EQ(tableIvPerplexity("OPT-13B", "GPU"), 20.93);
    EXPECT_DOUBLE_EQ(tableIvPerplexity("OPT-13B", "FIGLUT-F"), 20.93);
    EXPECT_DOUBLE_EQ(tableIvPerplexity("OPT-6.7B", "FIGLUT-I"), 24.13);
}

TEST(PplProxy, ExactAtAnchors)
{
    const PplProxy proxy(10.86, 0.01, 11.08, 0.03, 11.80);
    EXPECT_NEAR(proxy.predict(0.01), 11.08, 1e-9);
    EXPECT_NEAR(proxy.predict(0.03), 11.80, 1e-9);
}

TEST(PplProxy, MonotoneInError)
{
    const PplProxy proxy(10.86, 0.01, 11.08, 0.03, 11.80);
    double prev = 0.0;
    for (double err = 0.001; err < 0.3; err *= 1.5) {
        const double p = proxy.predict(err);
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST(PplProxy, ZeroErrorGivesFp16Baseline)
{
    const PplProxy proxy(10.86, 0.01, 11.08, 0.03, 11.80);
    EXPECT_DOUBLE_EQ(proxy.predict(0.0), 10.86);
    EXPECT_DOUBLE_EQ(proxy.predict(-1.0), 10.86);
}

TEST(PplProxy, ExtrapolationGrowsFast)
{
    // 2-bit-scale errors must blow up, as uniform 2-bit does in
    // Fig. 17.
    const PplProxy proxy(10.86, 0.01, 11.08, 0.03, 11.80);
    EXPECT_GT(proxy.predict(0.2), 20.0);
}

TEST(PplProxy, InvalidAnchorsThrow)
{
    EXPECT_THROW(PplProxy(10.0, 0.03, 11.0, 0.01, 12.0), FatalError);
    EXPECT_THROW(PplProxy(10.0, 0.01, 12.0, 0.03, 11.0), FatalError);
    EXPECT_THROW(PplProxy(10.0, 0.01, 9.0, 0.03, 11.0), FatalError);
}

} // namespace
} // namespace figlut
