/** @file Tests for transformer-layer workload construction. */

#include <gtest/gtest.h>

#include "model/workload.h"

namespace figlut {
namespace {

TEST(Workload, LayerContainsFourGemms)
{
    const auto &m = optByName("OPT-350M");
    WorkloadOptions opts;
    const auto tasks = layerWorkload(m, opts);
    std::size_t gemms = 0, vectors = 0;
    for (const auto &t : tasks) {
        if (t.kind == KernelTask::Kind::Gemm)
            ++gemms;
        else
            ++vectors;
    }
    EXPECT_EQ(gemms, 4u);
    EXPECT_GE(vectors, 5u); // ln1, attention, residuals, ln2, gelu
}

TEST(Workload, VectorKernelsCanBeDisabled)
{
    const auto &m = optByName("OPT-350M");
    WorkloadOptions opts;
    opts.includeVector = false;
    const auto tasks = layerWorkload(m, opts);
    for (const auto &t : tasks)
        EXPECT_EQ(t.kind, KernelTask::Kind::Gemm);
    EXPECT_EQ(tasks.size(), 4u);
}

TEST(Workload, DecodeStepScalesWithLayers)
{
    const auto &m = optByName("OPT-1.3B");
    WorkloadOptions opts;
    const auto layer = layerWorkload(m, opts);
    const auto step = decodeStepWorkload(m, opts);
    EXPECT_EQ(step.size(), layer.size() * m.layers);
}

TEST(Workload, GemmShapesCarryOptions)
{
    const auto &m = optByName("OPT-350M");
    WorkloadOptions opts;
    opts.batch = 7;
    opts.weightBits = 2;
    const auto tasks = layerWorkload(m, opts);
    for (const auto &t : tasks) {
        if (t.kind != KernelTask::Kind::Gemm)
            continue;
        EXPECT_EQ(t.gemm.batch, 7u);
        EXPECT_EQ(t.gemm.weightBits, 2);
    }
}

TEST(Workload, ContextLengthGrowsAttentionCost)
{
    const auto &m = optByName("OPT-350M");
    WorkloadOptions short_ctx;
    short_ctx.contextLen = 64;
    WorkloadOptions long_ctx;
    long_ctx.contextLen = 1024;

    auto attention_ops = [&](const WorkloadOptions &opts) {
        for (const auto &t : layerWorkload(m, opts))
            if (t.kind == KernelTask::Kind::Vector &&
                t.name == "attention")
                return t.vector.total();
        return 0.0;
    };
    EXPECT_GT(attention_ops(long_ctx), 8.0 * attention_ops(short_ctx));
}

TEST(Workload, TaskNamesAreSet)
{
    const auto &m = optByName("OPT-350M");
    const auto tasks = layerWorkload(m, WorkloadOptions{});
    for (const auto &t : tasks)
        EXPECT_FALSE(t.name.empty());
}

} // namespace
} // namespace figlut
