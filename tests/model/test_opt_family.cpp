/** @file Tests for the OPT family descriptors. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "model/opt_family.h"

namespace figlut {
namespace {

TEST(OptFamily, SevenVariantsInOrder)
{
    const auto &family = optFamily();
    ASSERT_EQ(family.size(), 7u);
    EXPECT_EQ(family.front().name, "OPT-125M");
    EXPECT_EQ(family.back().name, "OPT-30B");
    for (std::size_t i = 1; i < family.size(); ++i)
        EXPECT_GE(family[i].hidden, family[i - 1].hidden);
}

TEST(OptFamily, KnownConfigs)
{
    const auto &m = optByName("OPT-6.7B");
    EXPECT_EQ(m.hidden, 4096u);
    EXPECT_EQ(m.layers, 32u);
    EXPECT_EQ(m.ffn, 16384u);
    const auto &s = optByName("OPT-125M");
    EXPECT_EQ(s.hidden, 768u);
    EXPECT_EQ(s.layers, 12u);
}

TEST(OptFamily, FfnIsFourTimesHidden)
{
    for (const auto &m : optFamily())
        EXPECT_EQ(m.ffn, 4u * m.hidden) << m.name;
}

TEST(OptFamily, GemmParamsPlausible)
{
    // Decoder GEMM params are the bulk of the model: OPT-6.7B has
    // ~6.4B of its 6.7B parameters in decoder GEMMs.
    const auto &m = optByName("OPT-6.7B");
    EXPECT_NEAR(m.gemmParams(), 6.44e9, 0.1e9);
    const auto &b = optByName("OPT-30B");
    EXPECT_GT(b.gemmParams(), 28e9);
    EXPECT_LT(b.gemmParams(), 31e9);
}

TEST(OptFamily, UnknownNameThrows)
{
    EXPECT_THROW(optByName("OPT-66B"), FatalError);
}

TEST(LayerGemms, FourShapesInOrder)
{
    const auto &m = optByName("OPT-1.3B");
    const auto gemms = layerGemms(m, 32, 3);
    ASSERT_EQ(gemms.size(), 4u);
    // QKV: 3h x h
    EXPECT_EQ(gemms[0].m, 3u * 2048);
    EXPECT_EQ(gemms[0].n, 2048u);
    // attn out: h x h
    EXPECT_EQ(gemms[1].m, 2048u);
    // FC1: 4h x h
    EXPECT_EQ(gemms[2].m, 8192u);
    // FC2: h x 4h
    EXPECT_EQ(gemms[3].n, 8192u);
    for (const auto &g : gemms) {
        EXPECT_EQ(g.batch, 32u);
        EXPECT_EQ(g.weightBits, 3);
    }
}

TEST(LayerGemms, ZeroBatchThrows)
{
    EXPECT_THROW(layerGemms(optByName("OPT-125M"), 0, 4), FatalError);
}

TEST(DecodeStepGemms, CountsAndParamTotal)
{
    const auto &m = optByName("OPT-2.7B");
    const auto gemms = decodeStepGemms(m, 8, 4);
    EXPECT_EQ(gemms.size(), m.layers * 4);
    double params = 0.0;
    for (const auto &g : gemms)
        params += static_cast<double>(g.m) * g.n;
    EXPECT_DOUBLE_EQ(params, m.gemmParams());
}

} // namespace
} // namespace figlut
