/** @file The paper's headline claims, asserted end to end. Each test
 *  names the table/figure it guards. */

#include <gtest/gtest.h>

#include "figlut/figlut.h"

namespace figlut {
namespace {

GemmShape
opt67bLayer(int q)
{
    GemmShape s;
    s.m = 16384;
    s.n = 4096;
    s.batch = 32;
    s.weightBits = q;
    return s;
}

HwConfig
hw(EngineKind e, int fixed = 4)
{
    HwConfig h;
    h.engine = e;
    h.fixedWeightBits = fixed;
    return h;
}

TEST(PaperClaims, TableI_ComputationalComplexity)
{
    // GPU/FIGNA: O(mnk); iFPU: O(mnkq); FIGLUT: O(mnkq/mu).
    const auto s = opt67bLayer(4);
    const auto ifpu = gemmOpProfile(hw(EngineKind::IFPU), s);
    const auto figlut = gemmOpProfile(hw(EngineKind::FIGLUT_I), s);
    const auto figna = gemmOpProfile(hw(EngineKind::FIGNA), s);
    EXPECT_DOUBLE_EQ(ifpu.intAddOps, s.macs() * 4);           // mnkq
    EXPECT_DOUBLE_EQ(figlut.lutReads, s.macs() * 4 / 4.0);    // /mu
    EXPECT_DOUBLE_EQ(figna.intMulOps, s.macs());              // mnk
}

TEST(PaperClaims, TableV_EnergyEfficiencyOrdering)
{
    // FIGLUT 0.47 > FIGNA 0.33 > iFPU 0.21 TOPS/W (FP16-Q4).
    const auto s = opt67bLayer(4);
    const double figlut =
        simulateGemm(hw(EngineKind::FIGLUT_I), s).topsPerWatt;
    const double figna =
        simulateGemm(hw(EngineKind::FIGNA), s).topsPerWatt;
    const double ifpu =
        simulateGemm(hw(EngineKind::IFPU), s).topsPerWatt;
    EXPECT_GT(figlut, figna);
    EXPECT_GT(figna, ifpu);
    // Paper ratio FIGLUT/FIGNA = 0.47/0.33 = 1.42x; ours within band.
    EXPECT_NEAR(figlut / figna, 1.42, 0.45);
    // Paper ratio FIGNA/iFPU = 0.33/0.21 = 1.57x; ours within band.
    EXPECT_NEAR(figna / ifpu, 1.57, 0.6);
}

TEST(PaperClaims, Fig16_SubFourBitScaling)
{
    // Bit-serial TOPS/W grows as bits shrink; FIGLUT leads at every
    // precision (Q2 "particularly superior").
    for (const int q : {2, 3, 4}) {
        const auto s = opt67bLayer(q);
        const double figlut =
            simulateGemm(hw(EngineKind::FIGLUT_I), s).topsPerWatt;
        const double figna =
            simulateGemm(hw(EngineKind::FIGNA), s).topsPerWatt;
        const double ifpu =
            simulateGemm(hw(EngineKind::IFPU), s).topsPerWatt;
        EXPECT_GT(figlut, figna) << "q=" << q;
        EXPECT_GT(figlut, ifpu) << "q=" << q;
    }
    // The FIGLUT advantage over FIGNA widens as q drops.
    const double adv4 =
        simulateGemm(hw(EngineKind::FIGLUT_I), opt67bLayer(4))
            .topsPerWatt /
        simulateGemm(hw(EngineKind::FIGNA), opt67bLayer(4)).topsPerWatt;
    const double adv2 =
        simulateGemm(hw(EngineKind::FIGLUT_I), opt67bLayer(2))
            .topsPerWatt /
        simulateGemm(hw(EngineKind::FIGNA), opt67bLayer(2)).topsPerWatt;
    EXPECT_GT(adv2, adv4);
}

TEST(PaperClaims, Fig17_MixedPrecisionQ24BeatsFignaQ3)
{
    // FIGLUT-Q2.4 delivers ~1.98x FIGNA-Q3 TOPS/W. Model Q2.4 as the
    // parameter-weighted mix of Q2 and Q3 runs (60/40).
    const double figna_q3 =
        simulateGemm(hw(EngineKind::FIGNA), opt67bLayer(3)).topsPerWatt;
    const auto r2 = simulateGemm(hw(EngineKind::FIGLUT_I),
                                 opt67bLayer(2));
    const auto r3 = simulateGemm(hw(EngineKind::FIGLUT_I),
                                 opt67bLayer(3));
    // Energy and time mix linearly over layers.
    const double ops = opt67bLayer(2).ops();
    const double mixed_energy = 0.6 * r2.energy.totalJoules() +
                                0.4 * r3.energy.totalJoules();
    const double mixed_tops_w = ops / mixed_energy / 1e12;
    EXPECT_GT(mixed_tops_w / figna_q3, 1.5);
    EXPECT_LT(mixed_tops_w / figna_q3, 3.2);
}

TEST(PaperClaims, Fig15_EnergyScalesWithBitSerialPrecision)
{
    // For bit-serial engines, total energy at Q2 is well under Q4;
    // for fixed-precision engines it is flat below Q4.
    const double fig_q2 = simulateGemm(hw(EngineKind::FIGLUT_I),
                                       opt67bLayer(2))
                              .energy.totalJoules();
    const double fig_q4 = simulateGemm(hw(EngineKind::FIGLUT_I),
                                       opt67bLayer(4))
                              .energy.totalJoules();
    EXPECT_LT(fig_q2, 0.65 * fig_q4);

    const double figna_q2 = simulateGemm(hw(EngineKind::FIGNA),
                                         opt67bLayer(2))
                                .energy.totalJoules();
    const double figna_q4 = simulateGemm(hw(EngineKind::FIGNA),
                                         opt67bLayer(4))
                                .energy.totalJoules();
    EXPECT_NEAR(figna_q2 / figna_q4, 1.0, 0.01);
}

TEST(PaperClaims, Fig15_IfpuFlipFlopEnergyPenalty)
{
    // "iFPUs, which employ a greater number of flip-flops than FPEs,
    // suffer from higher power": register energy share must be larger
    // for iFPU than FIGNA.
    const auto s = opt67bLayer(4);
    const auto ifpu = simulateGemm(hw(EngineKind::IFPU), s);
    const auto figna = simulateGemm(hw(EngineKind::FIGNA), s);
    EXPECT_GT(ifpu.energy.registersFj, figna.energy.registersFj);
}

TEST(PaperClaims, Fig13_AreaEfficiencyReversalAtFp32Q8)
{
    // FIGNA/FIGLUT-I TOPS/mm^2 gap narrows (reverses) for FP32-Q8
    // because FIGLUT's aligned datapath scales with the mantissa.
    auto ratio = [&](ActFormat fmt, int q, int fixed) {
        GemmShape s = opt67bLayer(q);
        HwConfig hf = hw(EngineKind::FIGLUT_I);
        hf.actFormat = fmt;
        HwConfig hn = hw(EngineKind::FIGNA, fixed);
        hn.actFormat = fmt;
        return simulateGemm(hf, s).topsPerMm2 /
               simulateGemm(hn, s).topsPerMm2;
    };
    const double fp16_q4 = ratio(ActFormat::FP16, 4, 4);
    const double fp32_q8 = ratio(ActFormat::FP32, 8, 8);
    EXPECT_GT(fp16_q4, 1.0);       // FIGLUT wins at the design point
    EXPECT_LT(fp32_q8, fp16_q4);   // advantage shrinks at FP32-Q8
}

TEST(PaperClaims, TableIV_EngineAccuracyStory)
{
    // RTN-4bit OPT-layer numerics: all engines equal-perplexity-class
    // accuracy; FIGLUT-I within pre-alignment rounding of FIGLUT-F.
    Rng rng(3001);
    const auto w = syntheticWeights(128, 256, rng);
    const auto x = syntheticActivations(256, 8, rng);
    RtnConfig rcfg;
    rcfg.bits = 4;
    const auto rtn = quantizeRtn(w, rcfg);
    const auto bcq = uniformToBcq(rtn);

    NumericsConfig nc;
    MatrixD xq(x.rows(), x.cols());
    for (std::size_t i = 0; i < xq.size(); ++i)
        xq.at(i) = quantizeToFormat(x.at(i), ActFormat::FP16);
    const auto oracle = oracleGemm(rtn.dequantAll(), xq);

    const double e_gpu =
        compareMatrices(fpReferenceGemm(rtn.dequantAll(), x, nc),
                        oracle).nrmse();
    const double e_ff =
        compareMatrices(figlutGemm(bcq, x, nc, false), oracle).nrmse();
    const double e_fi =
        compareMatrices(figlutGemm(bcq, x, nc, true), oracle).nrmse();

    EXPECT_LT(e_gpu, 1e-3);
    EXPECT_LT(e_ff, 1e-3);
    EXPECT_LT(e_fi, 1e-3);
}

TEST(PaperClaims, TableVI_BcqQualityOrdering)
{
    // Our own quantizers must reproduce the Table VI ordering:
    // err(BCQ4) < err(BCQ3) and BCQ3 much better than RTN3.
    Rng rng(3002);
    const auto w = syntheticWeights(64, 512, rng);
    BcqConfig b4;
    b4.bits = 4;
    b4.useOffset = true;
    BcqConfig b3 = b4;
    b3.bits = 3;
    RtnConfig r3;
    r3.bits = 3;
    const double e4 = bcqMse(w, quantizeBcq(w, b4));
    const double e3 = bcqMse(w, quantizeBcq(w, b3));
    const double er3 = rtnMse(w, quantizeRtn(w, r3));
    EXPECT_LT(e4, e3);
    EXPECT_LT(e3, er3);
}

TEST(PaperClaims, LimitationsDiminishingGainsAtHighBits)
{
    // Section V "Limitations": the bit-serial advantage fades as q
    // grows — FIGLUT-I/FIGNA TOPS/W ratio at Q8 is smaller than at Q2.
    const double r2 =
        simulateGemm(hw(EngineKind::FIGLUT_I), opt67bLayer(2))
            .topsPerWatt /
        simulateGemm(hw(EngineKind::FIGNA), opt67bLayer(2)).topsPerWatt;
    const double r8 =
        simulateGemm(hw(EngineKind::FIGLUT_I), opt67bLayer(8))
            .topsPerWatt /
        simulateGemm(hw(EngineKind::FIGNA, 8), opt67bLayer(8))
            .topsPerWatt;
    EXPECT_LT(r8, r2);
}

} // namespace
} // namespace figlut
