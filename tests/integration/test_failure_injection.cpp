/** @file Failure injection: malformed configurations must fail fast
 *  with FatalError (user error), never PanicError or silent garbage. */

#include <gtest/gtest.h>

#include "figlut/figlut.h"

namespace figlut {
namespace {

TEST(FailureInjection, GemmShapeMismatchesAreFatal)
{
    Rng rng(4001);
    const auto w = syntheticWeights(8, 16, rng);
    BcqConfig cfg;
    cfg.bits = 2;
    const auto bcq = quantizeBcq(w, cfg);
    const MatrixD wrong_x(8, 2, 0.0); // needs 16 rows
    EXPECT_THROW(lutGemm(bcq, wrong_x, LutGemmConfig{}), FatalError);
}

TEST(FailureInjection, SimulatorRejectsQ8OnQ4Hardware)
{
    HwConfig hw;
    hw.engine = EngineKind::FIGNA;
    hw.fixedWeightBits = 4;
    GemmShape s;
    s.m = 64;
    s.n = 64;
    s.batch = 1;
    s.weightBits = 8;
    EXPECT_THROW(simulateGemm(hw, s), FatalError);
}

TEST(FailureInjection, BitSerialAcceptsAnyPrecisionOnOneConfig)
{
    // The flexibility claim: the same FIGLUT hardware handles Q1..Q8.
    HwConfig hw;
    hw.engine = EngineKind::FIGLUT_I;
    GemmShape s;
    s.m = 64;
    s.n = 64;
    s.batch = 1;
    for (int q = 1; q <= 8; ++q) {
        s.weightBits = q;
        EXPECT_NO_THROW(simulateGemm(hw, s)) << "q=" << q;
    }
}

TEST(FailureInjection, ZeroDimensionShapes)
{
    HwConfig hw;
    GemmShape s;
    s.m = 0;
    s.n = 4;
    s.batch = 1;
    EXPECT_THROW(simulateGemm(hw, s), FatalError);
}

TEST(FailureInjection, BadMuRejectedEverywhere)
{
    HwConfig hw;
    hw.mu = 9;
    GemmShape s;
    s.m = 4;
    s.n = 4;
    s.batch = 1;
    EXPECT_THROW(simulateGemm(hw, s), FatalError);

    LutGemmConfig lcfg;
    lcfg.mu = 12;
    Rng rng(4002);
    const auto w = syntheticWeights(4, 8, rng);
    BcqConfig qcfg;
    qcfg.bits = 1;
    const auto bcq = quantizeBcq(w, qcfg);
    const MatrixD x(8, 1, 1.0);
    EXPECT_THROW(lutGemm(bcq, x, lcfg), FatalError);
}

TEST(FailureInjection, ErrorsCarryContext)
{
    HwConfig hw;
    hw.engine = EngineKind::FIGNA;
    hw.fixedWeightBits = 4;
    GemmShape s;
    s.m = 4;
    s.n = 4;
    s.batch = 1;
    s.weightBits = 8;
    try {
        simulateGemm(hw, s);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("FIGNA"), std::string::npos);
        EXPECT_NE(msg.find("8"), std::string::npos);
    }
}

TEST(FailureInjection, QuantizerRejectsDegenerateRequests)
{
    MatrixD w(2, 2, 1.0);
    RtnConfig rcfg;
    rcfg.bits = 12;
    EXPECT_THROW(quantizeRtn(w, rcfg), FatalError);
    BcqConfig bcfg;
    bcfg.bits = -1;
    EXPECT_THROW(quantizeBcq(w, bcfg), FatalError);
}

TEST(FailureInjection, PreAlignRejectsInfiniteActivations)
{
    // A value that overflows FP16 must be caught at alignment time.
    EXPECT_THROW(preAlign({70000.0}, ActFormat::FP16), FatalError);
}

TEST(FailureInjection, WorkloadLevelPropagation)
{
    // A bad kernel inside a workload surfaces as FatalError, not a
    // crash or silent skip.
    HwConfig hw;
    hw.engine = EngineKind::FIGNA;
    Accelerator acc(hw);
    GemmShape bad;
    bad.m = 64;
    bad.n = 64;
    bad.batch = 1;
    bad.weightBits = 8; // needs Q8 hardware
    EXPECT_THROW(acc.runWorkload({KernelTask::makeGemm("bad", bad)}),
                 FatalError);
}

} // namespace
} // namespace figlut
