/** @file End-to-end pipelines: quantize -> pack -> functional GEMM ->
 *  simulate -> energy, across engines. */

#include <gtest/gtest.h>

#include "figlut/figlut.h"

namespace figlut {
namespace {

TEST(EndToEnd, QuantizeLutGemmSimulateEnergy)
{
    // A small transformer-like layer through the whole stack.
    Rng rng(2001);
    const std::size_t m = 96, n = 128, batch = 4;
    const auto weights = syntheticWeights(m, n, rng);
    const auto x = syntheticActivations(n, batch, rng);

    // 1) Quantize to 3-bit BCQ with offset.
    BcqConfig qcfg;
    qcfg.bits = 3;
    qcfg.useOffset = true;
    const auto bcq = quantizeBcq(weights, qcfg);

    // 2) Pack and verify the round trip.
    const auto packed = packBcq(bcq);
    const auto planes = unpackBcq(packed);
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(planes[static_cast<std::size_t>(i)] ==
                    bcq.planes[static_cast<std::size_t>(i)]);

    // 3) Functional LUT-GEMM vs oracle.
    NumericsConfig nc;
    const auto y = figlutGemm(bcq, x, nc, true);
    MatrixD xq(n, batch);
    for (std::size_t i = 0; i < xq.size(); ++i)
        xq.at(i) = quantizeToFormat(x.at(i), ActFormat::FP16);
    const auto oracle = oracleGemm(bcq.dequantAll(), xq);
    EXPECT_LT(compareMatrices(y, oracle).nrmse(), 1e-4);

    // 4) Simulate the same shape on FIGLUT-I.
    HwConfig hw;
    hw.engine = EngineKind::FIGLUT_I;
    GemmShape shape;
    shape.m = m;
    shape.n = n;
    shape.batch = batch;
    shape.weightBits = 3;
    const auto sim = simulateGemm(hw, shape);
    EXPECT_GT(sim.timing.totalCycles, 0.0);
    EXPECT_GT(sim.energy.totalFj(), 0.0);

    // 5) Functional op counts agree with the analytic profile for the
    //    dominant term (LUT reads).
    LutGemmCounters counters;
    LutGemmConfig lcfg;
    lcfg.preAligned = true;
    (void)lutGemm(bcq, x, lcfg, &counters);
    EXPECT_DOUBLE_EQ(static_cast<double>(counters.lutReads),
                     sim.profile.lutReads);
}

TEST(EndToEnd, UniformModelRunsOnBcqEngine)
{
    // The Table I interoperability claim, end to end: RTN-quantized
    // weights execute on the BCQ LUT engine with uniform-quality
    // results.
    Rng rng(2002);
    const auto weights = syntheticWeights(64, 96, rng);
    const auto x = syntheticActivations(96, 2, rng);

    RtnConfig rcfg;
    rcfg.bits = 4;
    const auto rtn = quantizeRtn(weights, rcfg);
    const auto bcq = uniformToBcq(rtn);

    NumericsConfig nc;
    const auto y_figlut = figlutGemm(bcq, x, nc, true);
    const auto y_figna = fignaGemm(rtn, x, nc);
    // Same quantized weights, same pre-alignment: results agree to
    // accumulation-order noise.
    EXPECT_LT(compareMatrices(y_figlut, y_figna).nrmse(), 1e-5);
}

TEST(EndToEnd, MixedPrecisionPipeline)
{
    // Sensitivity-driven allocation -> per-layer quantization -> the
    // average bit width drives bit-serial cycle counts.
    Rng rng(2003);
    const auto &model = optByName("OPT-350M");
    const auto gemms = layerGemms(model, 8, 2);

    std::vector<LayerBudgetItem> items;
    for (std::size_t i = 0; i < gemms.size(); ++i) {
        items.push_back({"g" + std::to_string(i),
                         gemms[i].m * gemms[i].n,
                         1.0 + static_cast<double>(i)});
    }
    MixedPrecisionConfig mcfg;
    mcfg.targetAvgBits = 2.4;
    mcfg.minBits = 2;
    mcfg.maxBits = 3;
    const auto plan = allocateBits(items, mcfg);
    EXPECT_LE(plan.avgBits, 2.4 + 1e-9);

    // Simulate each layer at its assigned bits; cycles must land
    // between the all-2-bit and all-3-bit extremes.
    HwConfig hw;
    hw.engine = EngineKind::FIGLUT_I;
    auto total_cycles = [&](const std::vector<int> &bits) {
        double cycles = 0.0;
        for (std::size_t i = 0; i < gemms.size(); ++i) {
            GemmShape s = gemms[i];
            s.weightBits = bits[i];
            cycles += simulateGemm(hw, s).timing.totalCycles;
        }
        return cycles;
    };
    const double mixed = total_cycles(plan.bitsPerLayer);
    const double all2 = total_cycles({2, 2, 2, 2});
    const double all3 = total_cycles({3, 3, 3, 3});
    EXPECT_GT(mixed, all2 * 0.999);
    EXPECT_LT(mixed, all3 * 1.001);
}

TEST(EndToEnd, DecodeStepAcrossAllEngines)
{
    const auto &model = optByName("OPT-125M");
    WorkloadOptions opts;
    opts.batch = 8;
    opts.contextLen = 64;
    const auto tasks = decodeStepWorkload(model, opts);

    double prev_tops_w = 0.0;
    for (const auto e : {EngineKind::FPE, EngineKind::IFPU,
                         EngineKind::FIGNA, EngineKind::FIGLUT_I}) {
        HwConfig hw;
        hw.engine = e;
        Accelerator acc(hw);
        const auto result = acc.runWorkload(tasks);
        EXPECT_GT(result.effTops, 0.0) << engineName(e);
        EXPECT_GT(result.topsPerWatt, prev_tops_w) << engineName(e);
        prev_tops_w = result.topsPerWatt;
    }
}

TEST(EndToEnd, BitExactReproducibility)
{
    // Two identical runs through the full stack produce identical
    // bits — the determinism contract.
    for (int run = 0; run < 2; ++run) {
        static MatrixD first;
        Rng rng(2004);
        const auto w = syntheticWeights(32, 64, rng);
        const auto x = syntheticActivations(64, 2, rng);
        BcqConfig cfg;
        cfg.bits = 2;
        cfg.useOffset = true;
        const auto bcq = quantizeBcq(w, cfg);
        NumericsConfig nc;
        const auto y = figlutGemm(bcq, x, nc, true);
        if (run == 0)
            first = y;
        else
            EXPECT_TRUE(compareMatrices(y, first).identical);
    }
}

} // namespace
} // namespace figlut
