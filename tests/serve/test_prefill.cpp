/**
 * @file
 * Tests for computed prefill in the serving engine (serve/engine.h).
 *
 * The load-bearing invariant: prefill chunking is pure scheduling.
 * For any prefillChunkTokens — 1, a mid-prompt size, or past every
 * prompt — each request's final hidden state, full KV history, exact
 * counter share, and token totals are bit-identical to the
 * whole-prompt (chunk 0) run. On top of that: the P == 0 path is
 * untouched by the chunk knob, per-request counter shares reassemble
 * to the fused-step totals across mixed prefill/decode batches, TTFT
 * on a virtual clock strictly exceeds the queue wait and grows with
 * prompt length, and an eviction's re-admission wait lands in
 * restartSeconds (not queueSeconds).
 */

#include <gtest/gtest.h>

#include <vector>

#include "serve/engine.h"

namespace figlut {
namespace serve {
namespace {

OptConfig
tinyConfig(std::size_t hidden, std::size_t layers, std::size_t heads,
           std::size_t ffn)
{
    OptConfig cfg;
    cfg.name = "OPT-prefill-test";
    cfg.hidden = hidden;
    cfg.layers = layers;
    cfg.heads = heads;
    cfg.ffn = ffn;
    return cfg;
}

EngineOptions
tinyEngineOptions()
{
    EngineOptions opts;
    opts.model.bcqIterations = 0;
    opts.model.weightBits = 3;
    return opts;
}

std::size_t
blockBytesFor(const OptConfig &model, std::size_t blockTokens)
{
    return blockTokens * 2 * model.hidden * sizeof(double);
}

void
expectCountersEqual(const LutGemmCounters &a, const LutGemmCounters &b)
{
    EXPECT_EQ(a.lutGenerations, b.lutGenerations);
    EXPECT_EQ(a.generatorAdds, b.generatorAdds);
    EXPECT_EQ(a.lutReads, b.lutReads);
    EXPECT_EQ(a.racAccumulates, b.racAccumulates);
    EXPECT_EQ(a.scaleMuls, b.scaleMuls);
    EXPECT_EQ(a.offsetOps, b.offsetOps);
}

void
addCounters(LutGemmCounters &into, const LutGemmCounters &from)
{
    into.lutGenerations += from.lutGenerations;
    into.generatorAdds += from.generatorAdds;
    into.lutReads += from.lutReads;
    into.racAccumulates += from.racAccumulates;
    into.scaleMuls += from.scaleMuls;
    into.offsetOps += from.offsetOps;
}

/** Everything a drained request leaves behind that chunking must not
 *  change. */
struct RequestOutcome
{
    MatrixD hidden;
    KvCache kv;
    LutGemmCounters counters;
    std::size_t prefillTokens = 0;
    std::size_t tokensDecoded = 0;
};

/** Run a fixed three-request mix (long prompt, short prompt, no
 *  prompt) to completion under one chunk size and capture each
 *  request's outcome. */
std::vector<RequestOutcome>
drainWithChunk(std::size_t chunkTokens)
{
    const auto model = tinyConfig(16, 2, 2, 32);
    EngineOptions opts = tinyEngineOptions();
    opts.maxBatch = 3;
    opts.prefillChunkTokens = chunkTokens;
    auto created = Engine::create(model, opts);
    EXPECT_TRUE(created.ok()) << created.status().toString();
    Engine &engine = *created.value();

    const std::size_t prompts[3] = {5, 3, 0};
    const std::size_t budgets[3] = {3, 2, 4};
    const std::uint64_t seeds[3] = {401, 402, 403};
    RequestId ids[3] = {};
    for (std::size_t i = 0; i < 3; ++i) {
        RequestOptions req;
        req.maxTokens = budgets[i];
        req.promptTokens = prompts[i];
        req.seed = seeds[i];
        auto id = engine.submit(req);
        EXPECT_TRUE(id.ok()) << id.status().toString();
        ids[i] = id.value();
    }

    std::size_t steps = 0;
    while (engine.liveRequests() > 0 || engine.queuedRequests() > 0) {
        const auto stats = engine.step();
        EXPECT_TRUE(stats.ok()) << stats.status().toString();
        EXPECT_LT(++steps, 64u) << "engine failed to drain";
    }

    std::vector<RequestOutcome> outcomes;
    for (std::size_t i = 0; i < 3; ++i) {
        const auto snap = engine.poll(ids[i]);
        EXPECT_TRUE(snap.ok());
        EXPECT_EQ(snap.value().state, RequestState::Finished);
        RequestOutcome out;
        out.hidden = snap.value().hidden;
        out.kv = engine.kvHistory(ids[i]).value();
        out.counters = snap.value().stats.counters;
        out.prefillTokens = snap.value().stats.prefillTokens;
        out.tokensDecoded = snap.value().stats.tokensDecoded;
        outcomes.push_back(std::move(out));
    }
    return outcomes;
}

/**
 * The tentpole invariant: chunk size 1 (one prompt token per step),
 * a mid-prompt size, and a chunk past every prompt (= whole-prompt
 * in one step) all reproduce the chunk-0 run bit for bit — hidden
 * states, full KV histories (prompt entries included), exact counter
 * shares, and token totals.
 */
TEST(Prefill, ChunkingNeverChangesResults)
{
    const auto baseline = drainWithChunk(0);
    ASSERT_EQ(baseline.size(), 3u);
    EXPECT_EQ(baseline[0].prefillTokens, 5u);
    EXPECT_EQ(baseline[1].prefillTokens, 3u);
    EXPECT_EQ(baseline[2].prefillTokens, 0u);
    // Prompt K/V is real: the history holds prompt + decode entries.
    EXPECT_EQ(baseline[0].kv.length(), 5u + 3u);
    EXPECT_EQ(baseline[1].kv.length(), 3u + 2u);
    EXPECT_EQ(baseline[2].kv.length(), 4u);

    for (const std::size_t chunk : {1u, 2u, 16u, 64u}) {
        const auto chunked = drainWithChunk(chunk);
        ASSERT_EQ(chunked.size(), baseline.size());
        for (std::size_t i = 0; i < baseline.size(); ++i) {
            EXPECT_EQ(chunked[i].hidden, baseline[i].hidden)
                << "chunk " << chunk << " request " << i;
            EXPECT_EQ(chunked[i].kv, baseline[i].kv)
                << "chunk " << chunk << " request " << i;
            expectCountersEqual(chunked[i].counters,
                                baseline[i].counters);
            EXPECT_EQ(chunked[i].prefillTokens,
                      baseline[i].prefillTokens);
            EXPECT_EQ(chunked[i].tokensDecoded,
                      baseline[i].tokensDecoded);
        }
    }
}

/**
 * A promptless request never touches the prefill path: with and
 * without a chunk budget it decodes the same trajectory from the same
 * seed (the pre-prefill RNG stream is preserved).
 */
TEST(Prefill, ZeroPromptIsUntouchedByTheChunkKnob)
{
    const auto model = tinyConfig(16, 1, 2, 32);
    std::vector<RequestOutcome> runs;
    for (const std::size_t chunk : {0u, 1u}) {
        EngineOptions opts = tinyEngineOptions();
        opts.prefillChunkTokens = chunk;
        auto created = Engine::create(model, opts);
        ASSERT_TRUE(created.ok());
        Engine &engine = *created.value();
        RequestOptions req;
        req.maxTokens = 3;
        req.seed = 77;
        const RequestId id = engine.submit(req).value();
        while (engine.liveRequests() > 0)
            ASSERT_TRUE(engine.step().ok());
        const auto snap = engine.poll(id).value();
        EXPECT_EQ(snap.stats.prefillTokens, 0u);
        RequestOutcome out;
        out.hidden = snap.hidden;
        out.kv = engine.kvHistory(id).value();
        out.counters = snap.stats.counters;
        runs.push_back(std::move(out));
    }
    EXPECT_EQ(runs[0].hidden, runs[1].hidden);
    EXPECT_EQ(runs[0].kv, runs[1].kv);
    expectCountersEqual(runs[0].counters, runs[1].counters);
}

/**
 * Token-weighted counter accounting across mixed prefill/decode
 * batches: summing every request's counter share reproduces the sum
 * of every fused step's counters exactly, and the per-step prefill/
 * decode token splits add up to the per-request totals.
 */
TEST(Prefill, CounterSharesReassembleAcrossMixedBatches)
{
    const auto model = tinyConfig(16, 2, 2, 32);
    EngineOptions opts = tinyEngineOptions();
    opts.maxBatch = 3;
    opts.prefillChunkTokens = 2; // prompts straddle several steps
    auto created = Engine::create(model, opts);
    ASSERT_TRUE(created.ok());
    Engine &engine = *created.value();

    const std::size_t prompts[3] = {7, 4, 0};
    const std::size_t budgets[3] = {2, 3, 5};
    std::vector<RequestId> ids;
    for (std::size_t i = 0; i < 3; ++i) {
        RequestOptions req;
        req.maxTokens = budgets[i];
        req.promptTokens = prompts[i];
        req.seed = 900 + i;
        ids.push_back(engine.submit(req).value());
    }

    LutGemmCounters stepTotal;
    std::size_t stepPrefill = 0, stepDecode = 0;
    while (engine.liveRequests() > 0 || engine.queuedRequests() > 0) {
        const auto stats = engine.step();
        ASSERT_TRUE(stats.ok()) << stats.status().toString();
        addCounters(stepTotal, stats.value().counters);
        stepPrefill += stats.value().prefillTokens;
        stepDecode += stats.value().decodeTokens;
        // The fused batch width is the column-context count, and it
        // splits exactly into prefill and decode columns.
        EXPECT_EQ(stats.value().columnContexts.size(),
                  stats.value().prefillTokens +
                      stats.value().decodeTokens);
    }

    LutGemmCounters requestTotal;
    std::size_t requestPrefill = 0, requestDecode = 0;
    for (std::size_t i = 0; i < 3; ++i) {
        const auto snap = engine.poll(ids[i]).value();
        EXPECT_EQ(snap.state, RequestState::Finished);
        addCounters(requestTotal, snap.stats.counters);
        requestPrefill += snap.stats.prefillTokens;
        requestDecode += snap.stats.tokensDecoded;
        EXPECT_EQ(snap.stats.prefillTokens, prompts[i]);
        EXPECT_EQ(snap.stats.tokensDecoded, budgets[i]);
    }
    expectCountersEqual(requestTotal, stepTotal);
    EXPECT_EQ(requestPrefill, stepPrefill);
    EXPECT_EQ(requestDecode, stepDecode);
}

/**
 * Honest TTFT on a virtual clock: a long prompt pays its prefill
 * steps between the queue-wait stamp and the first token, so
 * ttftSeconds strictly exceeds queueSeconds and grows with prompt
 * length. With chunk 8, P=32 takes 4 prefill steps and P=16 takes 2.
 */
TEST(Prefill, TtftExceedsQueueWaitAndGrowsWithPrompt)
{
    const auto model = tinyConfig(16, 1, 2, 32);
    double ttftByPrompt[2] = {0.0, 0.0};
    const std::size_t prompts[2] = {16, 32};
    for (std::size_t p = 0; p < 2; ++p) {
        VirtualClock clock;
        EngineOptions opts = tinyEngineOptions();
        opts.prefillChunkTokens = 8;
        opts.clock = &clock;
        auto created = Engine::create(model, opts);
        ASSERT_TRUE(created.ok());
        Engine &engine = *created.value();

        RequestOptions req;
        req.maxTokens = 1;
        req.promptTokens = prompts[p];
        req.seed = 55;
        const RequestId id = engine.submit(req).value();

        // One virtual second per step: queue wait is the 1s gap to
        // the first (prefill) step, TTFT spans every prefill step.
        std::size_t prefillSteps = 0;
        while (engine.liveRequests() > 0) {
            clock.advance(1.0);
            const auto stats = engine.step();
            ASSERT_TRUE(stats.ok());
            if (stats.value().prefillTokens > 0) {
                ++prefillSteps;
                EXPECT_EQ(stats.value().prefillTokens, 8u);
                EXPECT_EQ(stats.value().decodeTokens, 0u);
            }
        }
        EXPECT_EQ(prefillSteps, prompts[p] / 8);

        const auto snap = engine.poll(id).value();
        EXPECT_EQ(snap.state, RequestState::Finished);
        EXPECT_EQ(snap.stats.prefillTokens, prompts[p]);
        EXPECT_DOUBLE_EQ(snap.stats.queueSeconds, 1.0);
        // queue wait (1s) + one virtual second per prefill step (the
        // clock is static inside a step, so the decode step's end is
        // its start).
        EXPECT_DOUBLE_EQ(snap.stats.ttftSeconds,
                         1.0 + static_cast<double>(prefillSteps));
        EXPECT_GT(snap.stats.ttftSeconds, snap.stats.queueSeconds);
        ttftByPrompt[p] = snap.stats.ttftSeconds;
    }
    EXPECT_GT(ttftByPrompt[1], ttftByPrompt[0]);
}

/**
 * Post-eviction waits are their own metric: the gap from the evicting
 * step to the restarted life's first work step lands in
 * restartSeconds, while queueSeconds keeps the pre-first-work wait
 * only (here 0 — the victim worked immediately after submit).
 */
TEST(Prefill, EvictionWaitLandsInRestartSecondsNotQueueSeconds)
{
    const auto model = tinyConfig(32, 1, 2, 64);
    VirtualClock clock;
    EngineOptions opts = tinyEngineOptions();
    opts.maxBatch = 3;
    opts.kvBlockTokens = 1;
    // Four one-token blocks: three decoders fit for one step, then
    // the second token of the first two exhausts the budget and the
    // only pending victim — the third request — is evicted.
    opts.kvBudgetBytes = 4 * blockBytesFor(model, 1);
    opts.policy = DegradationPolicy::EvictLongestIdle;
    opts.clock = &clock;
    auto created = Engine::create(model, opts);
    ASSERT_TRUE(created.ok()) << created.status().toString();
    Engine &engine = *created.value();

    RequestOptions req;
    req.maxTokens = 2;
    req.seed = 61;
    const RequestId a = engine.submit(req).value();
    req.seed = 62;
    const RequestId b = engine.submit(req).value();
    req.maxTokens = 4;
    req.seed = 63;
    const RequestId c = engine.submit(req).value();

    // Step 1 at t=0: all three decode their first token (3 blocks).
    auto s1 = engine.step();
    ASSERT_TRUE(s1.ok());
    EXPECT_EQ(s1.value().decodedIds.size(), 3u);

    // Step 2 at t=5: a takes the last free block, b's reservation
    // fails, and the only pending item — c — is the victim. a and b
    // retire; c re-queues and is re-admitted into a freed slot.
    clock.advance(5.0);
    auto s2 = engine.step();
    ASSERT_TRUE(s2.ok());
    EXPECT_EQ(s2.value().evictedIds, std::vector<RequestId>({c}));
    EXPECT_EQ(s2.value().decodedIds, std::vector<RequestId>({a, b}));
    EXPECT_EQ(s2.value().retired, 2u);

    // Step 3 at t=8: c's second life decodes; the 3s re-admission
    // wait is stamped into restartSeconds.
    clock.advance(3.0);
    ASSERT_TRUE(engine.step().ok());
    {
        const auto snap = engine.poll(c).value();
        EXPECT_EQ(snap.stats.preemptions, 1u);
        EXPECT_DOUBLE_EQ(snap.stats.restartSeconds, 3.0);
        EXPECT_DOUBLE_EQ(snap.stats.queueSeconds, 0.0);
    }

    while (engine.liveRequests() > 0 || engine.queuedRequests() > 0)
        ASSERT_TRUE(engine.step().ok());
    const auto snap = engine.poll(c).value();
    EXPECT_EQ(snap.state, RequestState::Finished);
    EXPECT_EQ(snap.stats.tokensDecoded, 5u); // both lives
    EXPECT_DOUBLE_EQ(snap.stats.restartSeconds, 3.0);
    EXPECT_DOUBLE_EQ(snap.stats.queueSeconds, 0.0);
    const auto never = engine.poll(a).value();
    EXPECT_DOUBLE_EQ(never.stats.restartSeconds, 0.0);
}

} // namespace
} // namespace serve
} // namespace figlut
