/**
 * @file
 * Tests for the request-level serving engine (serve/engine.h).
 *
 * The load-bearing suite is the differential one: an Engine decoding N
 * concurrent requests with ragged token budgets and staggered
 * admission must produce, per request, bit-identical hidden states and
 * KV histories to N independent batch-1 Sessions — continuous batching
 * is an amortization, never a numerics change. The rest covers the
 * Status-based rejection paths (construction knobs, capacity,
 * lifecycle) and the live-batch analytic workload.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "model/synthetic.h"
#include "model/workload.h"
#include "runtime/session.h"
#include "serve/engine.h"

namespace figlut {
namespace serve {
namespace {

OptConfig
tinyConfig(std::size_t hidden, std::size_t layers, std::size_t heads,
           std::size_t ffn)
{
    OptConfig cfg;
    cfg.name = "OPT-serve-test";
    cfg.hidden = hidden;
    cfg.layers = layers;
    cfg.heads = heads;
    cfg.ffn = ffn;
    return cfg;
}

EngineOptions
tinyEngineOptions()
{
    EngineOptions opts;
    opts.model.bcqIterations = 0;
    opts.model.weightBits = 3;
    return opts;
}

void
expectCountersEqual(const LutGemmCounters &a, const LutGemmCounters &b)
{
    EXPECT_EQ(a.lutGenerations, b.lutGenerations);
    EXPECT_EQ(a.generatorAdds, b.generatorAdds);
    EXPECT_EQ(a.lutReads, b.lutReads);
    EXPECT_EQ(a.racAccumulates, b.racAccumulates);
    EXPECT_EQ(a.scaleMuls, b.scaleMuls);
    EXPECT_EQ(a.offsetOps, b.offsetOps);
}

/**
 * The tentpole differential: one Engine serving N requests of
 * different ages (ragged budgets, one submitted mid-flight so it waits
 * in the queue) against N independent batch-1 Sessions, self-fed from
 * the same seeds. Hidden states are compared per request after *every*
 * fused step, KV histories, counters, and stats at retirement.
 */
TEST(Engine, MatchesIndependentBatch1Sessions)
{
    const auto model = tinyConfig(16, 2, 2, 32);
    EngineOptions opts = tinyEngineOptions();
    opts.maxBatch = 2; // forces the third request through the queue

    constexpr std::size_t kRequests = 3;
    const std::size_t budgets[kRequests] = {2, 4, 3};
    const uint64_t seeds[kRequests] = {101, 202, 303};

    // Reference trajectories: per request, a batch-1 Session self-fed
    // from the request's synthetic initial hidden state.
    std::vector<std::vector<MatrixD>> refHidden(kRequests);
    std::vector<KvCache> refKv;
    std::vector<LutGemmCounters> refCounters(kRequests);
    for (std::size_t i = 0; i < kRequests; ++i) {
        SessionOptions so;
        so.quant = opts.model;
        so.exec = opts.exec;
        so.batch = 1;
        Session session(model, so);
        Rng rng(seeds[i]);
        MatrixD hidden =
            syntheticActivations(model.hidden, 1, rng);
        for (std::size_t t = 0; t < budgets[i]; ++t) {
            const auto r = session.runDecodeStep(hidden);
            hidden = r.hidden;
            refHidden[i].push_back(hidden);
            refCounters[i].lutGenerations += r.counters.lutGenerations;
            refCounters[i].generatorAdds += r.counters.generatorAdds;
            refCounters[i].lutReads += r.counters.lutReads;
            refCounters[i].racAccumulates += r.counters.racAccumulates;
            refCounters[i].scaleMuls += r.counters.scaleMuls;
            refCounters[i].offsetOps += r.counters.offsetOps;
        }
        refKv.push_back(session.kv(0));
    }

    // Serve the same three requests concurrently: two up front, the
    // third submitted after the first fused step (it must queue until
    // request 0 retires, then join with a fresh KV while the others
    // are mid-sequence — the ragged case).
    auto created = Engine::create(model, opts);
    ASSERT_TRUE(created.ok()) << created.status().toString();
    Engine &engine = *created.value();

    RequestId ids[kRequests] = {};
    for (std::size_t i = 0; i < 2; ++i) {
        auto id = engine.submit({budgets[i], seeds[i]});
        ASSERT_TRUE(id.ok()) << id.status().toString();
        ids[i] = id.value();
    }

    std::size_t stepsRun = 0;
    while (engine.liveRequests() > 0 || engine.queuedRequests() > 0) {
        const auto stats = engine.step();
        ASSERT_TRUE(stats.ok()) << stats.status().toString();
        ++stepsRun;
        if (stepsRun == 1) {
            auto id = engine.submit({budgets[2], seeds[2]});
            ASSERT_TRUE(id.ok()) << id.status().toString();
            ids[2] = id.value();
            // maxBatch 2 is full: request 2 waits in the queue.
            EXPECT_EQ(engine.queuedRequests(), 1u);
        }
        // After every fused step, every request seen so far matches
        // its solo trajectory at its own age.
        for (std::size_t i = 0; i < kRequests; ++i) {
            if (ids[i] == 0)
                continue;
            const auto snap = engine.poll(ids[i]);
            ASSERT_TRUE(snap.ok()) << snap.status().toString();
            const std::size_t age = snap.value().stats.tokensDecoded;
            EXPECT_EQ(snap.value().kvLength, age);
            if (age == 0)
                continue;
            EXPECT_EQ(snap.value().hidden, refHidden[i][age - 1])
                << "request " << i << " age " << age;
        }
        ASSERT_LT(stepsRun, 32u) << "engine failed to drain";
    }

    // Retirement: exact budgets, exact KV histories, exact per-request
    // counter shares, and sane timing/queue accounting.
    for (std::size_t i = 0; i < kRequests; ++i) {
        const auto snap = engine.poll(ids[i]);
        ASSERT_TRUE(snap.ok());
        EXPECT_EQ(snap.value().state, RequestState::Finished);
        EXPECT_EQ(snap.value().stats.tokensDecoded, budgets[i]);
        EXPECT_EQ(snap.value().stats.gemmCalls,
                  budgets[i] * 4 * model.layers);
        expectCountersEqual(snap.value().stats.counters, refCounters[i]);
        EXPECT_GT(snap.value().stats.decodeSeconds, 0.0);
        const auto kv = engine.kvHistory(ids[i]);
        ASSERT_TRUE(kv.ok());
        EXPECT_EQ(kv.value(), refKv[i]) << "request " << i;
    }
    // The late request actually waited.
    const auto late = engine.poll(ids[2]);
    ASSERT_TRUE(late.ok());
    EXPECT_GT(late.value().stats.queuedSteps, 0u);
    EXPECT_GE(late.value().stats.queueSeconds, 0.0);
}

TEST(Engine, CreateRejectsEachBadKnob)
{
    const auto model = tinyConfig(16, 1, 2, 32);
    const EngineOptions good = tinyEngineOptions();
    ASSERT_TRUE(Engine::create(model, good).ok());

    {
        EngineOptions o = good;
        o.exec.threads = kMaxLutGemmThreads + 1;
        const auto r = Engine::create(model, o);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), StatusCode::InvalidArgument);
        EXPECT_NE(r.status().message().find("threads"),
                  std::string::npos);
    }
    {
        EngineOptions o = good;
        o.model.mu = 0;
        const auto r = Engine::create(model, o);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), StatusCode::InvalidArgument);
        EXPECT_NE(r.status().message().find("mu"), std::string::npos);
    }
    {
        EngineOptions o = good;
        o.model.mu = 1; // valid range, but hFFLUT needs mu >= 2
        const auto r = Engine::create(model, o);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), StatusCode::InvalidArgument);
        EXPECT_NE(r.status().message().find("mu >= 2"),
                  std::string::npos);
    }
    {
        EngineOptions o = good;
        o.exec.blockRows = 0;
        const auto r = Engine::create(model, o);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), StatusCode::InvalidArgument);
        EXPECT_NE(r.status().message().find("blockRows"),
                  std::string::npos);
    }
    {
        EngineOptions o = good;
        o.maxBatch = 0;
        const auto r = Engine::create(model, o);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), StatusCode::InvalidArgument);
        EXPECT_NE(r.status().message().find("maxBatch"),
                  std::string::npos);
    }
    {
        EngineOptions o = good;
        o.model.weightBits = 0;
        const auto r = Engine::create(model, o);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), StatusCode::InvalidArgument);
    }
    {
        const auto r = Engine::create(tinyConfig(0, 0, 0, 0), good);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), StatusCode::InvalidArgument);
    }
    {
        // hidden not divisible by heads
        const auto r = Engine::create(tinyConfig(10, 1, 3, 32), good);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), StatusCode::InvalidArgument);
        EXPECT_NE(r.status().message().find("heads"), std::string::npos);
    }
}

TEST(Engine, SubmitRejectsOverCapacityTraffic)
{
    EngineOptions opts = tinyEngineOptions();
    opts.maxBatch = 1;
    opts.maxQueue = 1;
    auto created = Engine::create(tinyConfig(16, 1, 2, 32), opts);
    ASSERT_TRUE(created.ok());
    Engine &engine = *created.value();

    ASSERT_TRUE(engine.submit({1, 1}).ok()); // live
    ASSERT_TRUE(engine.submit({1, 2}).ok()); // queued
    const auto rejected = engine.submit({1, 3});
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::ResourceExhausted);
    EXPECT_NE(rejected.status().message().find("maxBatch"),
              std::string::npos);

    // Retiring traffic frees capacity again.
    ASSERT_TRUE(engine.step().ok()); // decodes + retires the live one
    EXPECT_TRUE(engine.submit({1, 3}).ok());
}

TEST(Engine, LifecycleErrorsAreRecoverable)
{
    EngineOptions opts = tinyEngineOptions();
    auto created = Engine::create(tinyConfig(16, 1, 2, 32), opts);
    ASSERT_TRUE(created.ok());
    Engine &engine = *created.value();

    // Nothing live: step() refuses without dying.
    const auto idle = engine.step();
    ASSERT_FALSE(idle.ok());
    EXPECT_EQ(idle.status().code(), StatusCode::FailedPrecondition);

    // Unknown ids.
    EXPECT_EQ(engine.poll(99).status().code(), StatusCode::NotFound);
    EXPECT_EQ(engine.cancel(99).code(), StatusCode::NotFound);
    EXPECT_EQ(engine.resetKv(99).code(), StatusCode::NotFound);
    EXPECT_EQ(engine.kvHistory(99).status().code(), StatusCode::NotFound);

    const auto id = engine.submit({1, 7});
    ASSERT_TRUE(id.ok());

    // Malformed injected input.
    const Status bad = engine.provideInput(id.value(), MatrixD(8, 1));
    EXPECT_EQ(bad.code(), StatusCode::InvalidArgument);

    // Finished requests reject further mutation but stay pollable.
    ASSERT_TRUE(engine.step().ok());
    EXPECT_EQ(engine.poll(id.value()).value().state,
              RequestState::Finished);
    EXPECT_EQ(engine.cancel(id.value()).code(),
              StatusCode::FailedPrecondition);
    EXPECT_EQ(engine.resetKv(id.value()).code(),
              StatusCode::FailedPrecondition);
    EXPECT_EQ(engine
                  .provideInput(id.value(),
                                MatrixD(16, 1))
                  .code(),
              StatusCode::FailedPrecondition);
}

TEST(Engine, CancelFreesTheSlotForQueuedTraffic)
{
    EngineOptions opts = tinyEngineOptions();
    opts.maxBatch = 1;
    auto created = Engine::create(tinyConfig(16, 1, 2, 32), opts);
    ASSERT_TRUE(created.ok());
    Engine &engine = *created.value();

    const auto first = engine.submit({4, 1});
    const auto second = engine.submit({1, 2});
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(engine.liveRequests(), 1u);
    EXPECT_EQ(engine.queuedRequests(), 1u);

    ASSERT_TRUE(engine.cancel(first.value()).ok());
    EXPECT_EQ(engine.liveRequests(), 0u);
    EXPECT_EQ(engine.poll(first.value()).value().state,
              RequestState::Cancelled);

    // Admission stays FIFO: a submit after the cancellation must not
    // jump the earlier queued request into the freed slot.
    const auto third = engine.submit({1, 3});
    ASSERT_TRUE(third.ok());
    EXPECT_EQ(engine.liveRequests(), 0u);
    EXPECT_EQ(engine.queuedRequests(), 2u);

    // With a free slot and a non-empty queue, the scored workload is
    // the prospective batch the next step will admit, not the (empty)
    // active set.
    EXPECT_FALSE(engine.workloadTasks().empty());

    // The next step admits the older request into the freed slot,
    // decodes + retires it, and refills the slot with the younger one
    // (which decodes from the following step).
    const auto stats = engine.step();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().admitted, 2u);
    EXPECT_EQ(stats.value().liveRequests, 1u);
    EXPECT_EQ(stats.value().retired, 1u);
    EXPECT_EQ(engine.poll(second.value()).value().state,
              RequestState::Finished);
    EXPECT_EQ(engine.poll(third.value()).value().state,
              RequestState::Active);
    EXPECT_EQ(engine.poll(third.value()).value().stats.tokensDecoded,
              0u);
    ASSERT_TRUE(engine.step().ok());
    EXPECT_EQ(engine.poll(third.value()).value().state,
              RequestState::Finished);
}

TEST(Engine, ResetKvRestartsARequestDeterministically)
{
    EngineOptions opts = tinyEngineOptions();
    auto created = Engine::create(tinyConfig(16, 1, 2, 32), opts);
    ASSERT_TRUE(created.ok());
    Engine &engine = *created.value();

    const auto id = engine.submit({0, 9}); // unbounded
    ASSERT_TRUE(id.ok());
    const MatrixD input = engine.poll(id.value()).value().hidden;

    ASSERT_TRUE(engine.step().ok());
    const MatrixD first = engine.poll(id.value()).value().hidden;
    ASSERT_TRUE(engine.step().ok());
    EXPECT_EQ(engine.poll(id.value()).value().kvLength, 2u);

    ASSERT_TRUE(engine.resetKv(id.value()).ok());
    EXPECT_EQ(engine.poll(id.value()).value().kvLength, 0u);
    ASSERT_TRUE(engine.provideInput(id.value(), input).ok());
    ASSERT_TRUE(engine.step().ok());
    EXPECT_EQ(engine.poll(id.value()).value().hidden, first);

    ASSERT_TRUE(engine.cancel(id.value()).ok());
}

TEST(Engine, WorkloadTasksTrackTheLiveRaggedBatch)
{
    const auto model = tinyConfig(16, 2, 2, 32);
    EngineOptions opts = tinyEngineOptions();
    auto created = Engine::create(model, opts);
    ASSERT_TRUE(created.ok());
    Engine &engine = *created.value();

    EXPECT_TRUE(engine.workloadTasks().empty());

    const auto shortReq = engine.submit({1, 1});
    const auto longReq = engine.submit({3, 2});
    ASSERT_TRUE(shortReq.ok());
    ASSERT_TRUE(longReq.ok());

    // Fresh batch: 2 live requests, both about to attend 1 entry.
    WorkloadOptions wl;
    wl.batch = 2;
    wl.weightBits = opts.model.weightBits;
    wl.groupSize = opts.model.groupSize;
    wl.hasOffset = opts.model.useOffset;
    auto tasks = engine.workloadTasks();
    auto expected =
        decodeStepWorkload(model, wl, std::vector<std::size_t>{1, 1});
    ASSERT_EQ(tasks.size(), expected.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        EXPECT_EQ(tasks[i].kind, expected[i].kind) << "task " << i;
        if (tasks[i].kind == KernelTask::Kind::Gemm) {
            EXPECT_EQ(tasks[i].gemm.batch, 2u);
        } else {
            EXPECT_EQ(tasks[i].vector.adds, expected[i].vector.adds)
                << "task " << i;
            EXPECT_EQ(tasks[i].vector.muls, expected[i].vector.muls)
                << "task " << i;
            EXPECT_EQ(tasks[i].vector.specials,
                      expected[i].vector.specials)
                << "task " << i;
        }
    }

    // One step retires the short request; the survivor is now one
    // batch column attending over 2 entries next step.
    ASSERT_TRUE(engine.step().ok());
    EXPECT_EQ(engine.liveRequests(), 1u);
    wl.batch = 1;
    tasks = engine.workloadTasks();
    expected =
        decodeStepWorkload(model, wl, std::vector<std::size_t>{2});
    ASSERT_EQ(tasks.size(), expected.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (tasks[i].kind == KernelTask::Kind::Vector) {
            EXPECT_EQ(tasks[i].vector.total(),
                      expected[i].vector.total())
                << "task " << i;
        }
    }

    // A request joining mid-flight widens the scored batch again:
    // one aged column (ctx 3 after this step) + one fresh column.
    // Budget 2, so it outlives the fused step below and the engine is
    // still live for the simulate() check at the end.
    ASSERT_TRUE(engine.step().ok());
    const auto joined = engine.submit({2, 3});
    ASSERT_TRUE(joined.ok());
    EXPECT_EQ(engine.queuedRequests(), 0u); // free slot, direct admit
    wl.batch = 2;
    tasks = engine.workloadTasks();
    expected =
        decodeStepWorkload(model, wl, std::vector<std::size_t>{3, 1});
    ASSERT_EQ(tasks.size(), expected.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (tasks[i].kind == KernelTask::Kind::Vector) {
            EXPECT_EQ(tasks[i].vector.total(),
                      expected[i].vector.total())
                << "task " << i;
        }
    }
    const auto fused = engine.step();
    ASSERT_TRUE(fused.ok());
    EXPECT_EQ(fused.value().liveRequests, 2u);

    // The scored workload is the emitted one.
    HwConfig hw;
    hw.engine = EngineKind::FIGLUT_I;
    const auto sim = engine.simulate(hw);
    EXPECT_GT(sim.totalCycles, 0.0);
    const Accelerator acc(hw);
    const auto direct = acc.runWorkload(engine.workloadTasks());
    EXPECT_EQ(sim.totalCycles, direct.totalCycles);
}

TEST(Engine, BackendsAgreeOnTheFusedPath)
{
    // The fused step through Reference/Threaded/Packed must be
    // bit-identical (the Packed path is the only one consuming
    // pre-packed keys).
    const auto model = tinyConfig(24, 1, 2, 48);
    MatrixD outputs[3];
    const LutGemmBackend backends[] = {LutGemmBackend::Reference,
                                       LutGemmBackend::Threaded,
                                       LutGemmBackend::Packed};
    for (int i = 0; i < 3; ++i) {
        EngineOptions opts = tinyEngineOptions();
        opts.model.bcqIterations = 1;
        opts.exec.backend = backends[i];
        opts.exec.threads = 2;
        opts.exec.blockRows = 8;
        auto created = Engine::create(model, opts);
        ASSERT_TRUE(created.ok());
        Engine &engine = *created.value();
        if (backends[i] == LutGemmBackend::Packed)
            EXPECT_GT(engine.model().packedKeyBytes(), 0u);
        else
            EXPECT_EQ(engine.model().packedKeyBytes(), 0u);
        const auto a = engine.submit({2, 5});
        const auto b = engine.submit({2, 6});
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(b.ok());
        ASSERT_TRUE(engine.step().ok());
        ASSERT_TRUE(engine.step().ok());
        outputs[i] = engine.poll(a.value()).value().hidden;
        EXPECT_EQ(engine.poll(b.value()).value().state,
                  RequestState::Finished);
    }
    EXPECT_EQ(outputs[0], outputs[1]);
    EXPECT_EQ(outputs[0], outputs[2]);
}

} // namespace
} // namespace serve
} // namespace figlut
