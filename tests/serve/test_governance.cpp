/**
 * @file
 * Tests for memory-governed serving (serve/engine.h + degradation.h):
 * per-request deadlines on a virtual clock (including injected clock
 * skew), KV-budget admission with the ShedNewest and EvictLongestIdle
 * policies, and the survival contract — every request that does not
 * complete carries a definite terminal Status, and an evicted request
 * restarts from scratch to a bit-identical result.
 */

#include <gtest/gtest.h>

#include "serve/engine.h"

namespace figlut {
namespace serve {
namespace {

OptConfig
tinyConfig(std::size_t hidden, std::size_t layers, std::size_t heads,
           std::size_t ffn)
{
    OptConfig cfg;
    cfg.name = "OPT-governance-test";
    cfg.hidden = hidden;
    cfg.layers = layers;
    cfg.heads = heads;
    cfg.ffn = ffn;
    return cfg;
}

EngineOptions
tinyEngineOptions()
{
    EngineOptions opts;
    opts.model.bcqIterations = 0;
    opts.model.weightBits = 3;
    return opts;
}

std::size_t
blockBytesFor(const OptConfig &model, std::size_t blockTokens)
{
    return blockTokens * 2 * model.hidden * sizeof(double);
}

TEST(Governance, ConfigKnobsAreValidated)
{
    const auto model = tinyConfig(8, 2, 2, 16);

    EngineOptions zeroBlock = tinyEngineOptions();
    zeroBlock.kvBlockTokens = 0;
    const auto r1 = Engine::create(model, zeroBlock);
    ASSERT_FALSE(r1.ok());
    EXPECT_EQ(r1.status().code(), StatusCode::InvalidArgument);
    EXPECT_NE(r1.status().message().find("kvBlockTokens"),
              std::string::npos);

    // A budget that cannot hold one block per layer can never decode.
    EngineOptions tiny = tinyEngineOptions();
    tiny.kvBlockTokens = 4;
    tiny.kvBudgetBytes = blockBytesFor(model, 4) * model.layers - 1;
    const auto r2 = Engine::create(model, tiny);
    ASSERT_FALSE(r2.ok());
    EXPECT_EQ(r2.status().code(), StatusCode::InvalidArgument);
    EXPECT_NE(r2.status().message().find("kvBudgetBytes"),
              std::string::npos);

    // A negative deadline is a client bug, rejected at submit.
    EngineOptions ok = tinyEngineOptions();
    auto engine = Engine::create(model, ok);
    ASSERT_TRUE(engine.ok());
    RequestOptions bad;
    bad.deadlineS = -1.0;
    EXPECT_EQ(engine.value()->submit(bad).status().code(),
              StatusCode::InvalidArgument);
}

TEST(Governance, DeadlineExpiryRetiresActiveAndQueued)
{
    const auto model = tinyConfig(8, 1, 2, 16);
    VirtualClock clock;
    EngineOptions opts = tinyEngineOptions();
    opts.maxBatch = 1; // the second request waits in the queue
    opts.maxQueue = 4;
    opts.clock = &clock;
    auto created = Engine::create(model, opts);
    ASSERT_TRUE(created.ok());
    Engine &engine = *created.value();

    RequestOptions req;
    req.maxTokens = 16;
    req.deadlineS = 1.0;
    req.seed = 11;
    const RequestId active = engine.submit(req).value();
    req.seed = 22;
    const RequestId queued = engine.submit(req).value();

    // Inside the deadline both survive; the active one decodes.
    auto s1 = engine.step();
    ASSERT_TRUE(s1.ok());
    EXPECT_TRUE(s1.value().deadlineIds.empty());
    EXPECT_EQ(s1.value().decodedIds,
              std::vector<RequestId>({active}));

    // Past the deadline the sweep retires the active column AND the
    // queued request in one step that then decodes nothing.
    clock.advance(2.0);
    auto s2 = engine.step();
    ASSERT_TRUE(s2.ok());
    EXPECT_EQ(s2.value().deadlineIds,
              std::vector<RequestId>({active, queued}));
    EXPECT_TRUE(s2.value().decodedIds.empty());
    EXPECT_EQ(engine.liveRequests(), 0u);
    EXPECT_EQ(engine.queuedRequests(), 0u);

    for (const RequestId id : {active, queued}) {
        const auto snap = engine.poll(id);
        ASSERT_TRUE(snap.ok());
        EXPECT_EQ(snap.value().state, RequestState::DeadlineExceeded);
        EXPECT_EQ(snap.value().terminal.code(),
                  StatusCode::DeadlineExceeded);
        EXPECT_FALSE(snap.value().terminal.message().empty());
        // Expired KV is dropped, not retained.
        EXPECT_EQ(snap.value().kvLength, 0u);
    }
    EXPECT_EQ(engine.arena().blocksInUse(), 0u);

    // With nothing left, stepping is a precondition failure again.
    EXPECT_EQ(engine.step().status().code(),
              StatusCode::FailedPrecondition);
}

TEST(Governance, InjectedClockSkewFiresDeadlinesEarly)
{
    const auto model = tinyConfig(8, 1, 2, 16);
    VirtualClock clock;
    // No allocation faults; 5s of skew on odd-numbered steps.
    CountingFaultInjector faults(/*failEvery=*/0, /*skewS=*/5.0);
    EngineOptions opts = tinyEngineOptions();
    opts.clock = &clock;
    opts.faults = &faults;
    auto created = Engine::create(model, opts);
    ASSERT_TRUE(created.ok());
    Engine &engine = *created.value();

    RequestOptions req;
    req.maxTokens = 16;
    req.deadlineS = 2.0;
    req.seed = 7;
    const RequestId id = engine.submit(req).value();

    // Step 0 sees no skew: virtual time 0 is inside the deadline.
    auto s1 = engine.step();
    ASSERT_TRUE(s1.ok());
    EXPECT_TRUE(s1.value().deadlineIds.empty());

    // Step 1 sweeps at now + 5s of skew: the 2s deadline fires even
    // though real (virtual) time never moved.
    auto s2 = engine.step();
    ASSERT_TRUE(s2.ok());
    EXPECT_EQ(s2.value().deadlineIds, std::vector<RequestId>({id}));
    EXPECT_EQ(engine.poll(id).value().state,
              RequestState::DeadlineExceeded);
}

TEST(Governance, ShedNewestDropsTheNewestWithAStatus)
{
    const auto model = tinyConfig(8, 1, 2, 16);
    EngineOptions opts = tinyEngineOptions();
    opts.maxBatch = 2;
    opts.kvBlockTokens = 2;
    // Two blocks total: both columns fit until one needs a second
    // block, at which point the newest admission is shed for good.
    opts.kvBudgetBytes = 2 * blockBytesFor(model, 2);
    opts.policy = DegradationPolicy::ShedNewest;
    auto created = Engine::create(model, opts);
    ASSERT_TRUE(created.ok());
    Engine &engine = *created.value();

    RequestOptions req;
    req.maxTokens = 4;
    req.seed = 1;
    const RequestId older = engine.submit(req).value();
    req.seed = 2;
    const RequestId newer = engine.submit(req).value();

    // Steps 1-2: one block each, both decode.
    for (int i = 0; i < 2; ++i) {
        auto s = engine.step();
        ASSERT_TRUE(s.ok());
        EXPECT_EQ(s.value().decodedIds.size(), 2u);
        EXPECT_TRUE(s.value().shedIds.empty());
        EXPECT_LE(s.value().kvBlocksInUse, 2u);
    }
    // Step 3: the older column needs a second block; the budget is
    // full, so the newest request is the sacrifice — terminally.
    auto s3 = engine.step();
    ASSERT_TRUE(s3.ok());
    EXPECT_EQ(s3.value().shedIds, std::vector<RequestId>({newer}));
    EXPECT_EQ(s3.value().decodedIds, std::vector<RequestId>({older}));

    const auto shedSnap = engine.poll(newer);
    ASSERT_TRUE(shedSnap.ok());
    EXPECT_EQ(shedSnap.value().state, RequestState::Shed);
    EXPECT_EQ(shedSnap.value().terminal.code(),
              StatusCode::ResourceExhausted);
    EXPECT_FALSE(shedSnap.value().terminal.message().empty());

    // The survivor decodes to its full budget under the same cap.
    while (engine.liveRequests() > 0)
        ASSERT_TRUE(engine.step().ok());
    const auto okSnap = engine.poll(older);
    ASSERT_TRUE(okSnap.ok());
    EXPECT_EQ(okSnap.value().state, RequestState::Finished);
    EXPECT_TRUE(okSnap.value().terminal.ok());
    EXPECT_EQ(okSnap.value().stats.tokensDecoded, 4u);
    EXPECT_LE(engine.arena().peakBytes(), opts.kvBudgetBytes);
}

/**
 * The eviction round-trip: under EvictLongestIdle the victim loses its
 * blocks mid-flight, rejoins the queue, restarts from scratch, and
 * still finishes with hidden state and KV history bit-identical to an
 * unconstrained run — preemption is a latency event, never a numerics
 * event.
 */
TEST(Governance, EvictionRestartIsBitIdentical)
{
    const auto model = tinyConfig(8, 1, 2, 16);
    EngineOptions opts = tinyEngineOptions();
    opts.maxBatch = 2;
    opts.kvBlockTokens = 2;
    opts.kvBudgetBytes = 2 * blockBytesFor(model, 2);
    opts.policy = DegradationPolicy::EvictLongestIdle;
    auto created = Engine::create(model, opts);
    ASSERT_TRUE(created.ok());
    Engine &engine = *created.value();

    RequestOptions req;
    req.maxTokens = 3;
    req.seed = 31;
    const RequestId a = engine.submit(req).value();
    req.seed = 32;
    const RequestId b = engine.submit(req).value();

    // Steps 1-2: both columns fit in one block each.
    for (int i = 0; i < 2; ++i) {
        auto s = engine.step();
        ASSERT_TRUE(s.ok());
        EXPECT_EQ(s.value().decodedIds.size(), 2u);
    }
    // Step 3: a needs a second block; b (the other, equally idle but
    // newer column) is evicted, a finishes, and the freed slot
    // re-admits b in the same step.
    auto s3 = engine.step();
    ASSERT_TRUE(s3.ok());
    EXPECT_EQ(s3.value().evictedIds, std::vector<RequestId>({b}));
    EXPECT_EQ(s3.value().decodedIds, std::vector<RequestId>({a}));
    EXPECT_EQ(s3.value().retired, 1u);
    EXPECT_EQ(s3.value().admitted, 1u);

    // b is live again, restarted from zero KV.
    EXPECT_EQ(engine.poll(b).value().state, RequestState::Active);
    EXPECT_EQ(engine.poll(b).value().kvLength, 0u);

    // Steps 4-6: b's second life decodes its full budget alone.
    while (engine.liveRequests() > 0)
        ASSERT_TRUE(engine.step().ok());

    const auto snapA = engine.poll(a).value();
    const auto snapB = engine.poll(b).value();
    EXPECT_EQ(snapA.state, RequestState::Finished);
    EXPECT_EQ(snapB.state, RequestState::Finished);
    EXPECT_TRUE(snapB.terminal.ok());
    EXPECT_EQ(snapA.stats.preemptions, 0u);
    EXPECT_EQ(snapB.stats.preemptions, 1u);
    // tokensDecoded counts both lives; the KV keeps only the last.
    EXPECT_EQ(snapB.stats.tokensDecoded, 5u);
    EXPECT_EQ(snapB.kvLength, 3u);

    // Reference: the same two requests on an unconstrained engine.
    EngineOptions roomy = tinyEngineOptions();
    roomy.maxBatch = 2;
    auto reference = Engine::create(model, roomy);
    ASSERT_TRUE(reference.ok());
    Engine &ref = *reference.value();
    req.seed = 31;
    const RequestId refA = ref.submit(req).value();
    req.seed = 32;
    const RequestId refB = ref.submit(req).value();
    while (ref.liveRequests() > 0)
        ASSERT_TRUE(ref.step().ok());

    EXPECT_EQ(snapA.hidden, ref.poll(refA).value().hidden);
    EXPECT_EQ(snapB.hidden, ref.poll(refB).value().hidden);
    EXPECT_EQ(engine.kvHistory(a).value(),
              ref.kvHistory(refA).value());
    EXPECT_EQ(engine.kvHistory(b).value(),
              ref.kvHistory(refB).value());
}

/**
 * The survival contract under combined pressure: byte budget, injected
 * allocation faults, deadlines, and a client cancellation, all at
 * once. The engine must drain without an abort, and every request must
 * end in a terminal state whose Status code matches it exactly.
 */
TEST(Governance, EveryRequestEndsWithADefiniteStatus)
{
    const auto model = tinyConfig(8, 1, 2, 16);
    VirtualClock clock;
    CountingFaultInjector faults(/*failEvery=*/5, /*skewS=*/0.0);
    EngineOptions opts = tinyEngineOptions();
    opts.maxBatch = 3;
    opts.maxQueue = 8;
    opts.kvBlockTokens = 2;
    opts.kvBudgetBytes = 4 * blockBytesFor(model, 2);
    opts.policy = DegradationPolicy::ShedNewest;
    opts.clock = &clock;
    opts.faults = &faults;
    auto created = Engine::create(model, opts);
    ASSERT_TRUE(created.ok());
    Engine &engine = *created.value();

    std::vector<RequestId> ids;
    for (std::size_t i = 0; i < 8; ++i) {
        RequestOptions req;
        req.maxTokens = 2 + i % 4;
        req.promptTokens = i % 3;
        req.seed = 500 + i;
        // Every third request runs against a tight deadline.
        req.deadlineS = i % 3 == 0 ? 0.05 : 0.0;
        ids.push_back(engine.submit(req).value());
    }
    ASSERT_TRUE(engine.cancel(ids[1]).ok());

    std::size_t steps = 0;
    while (engine.liveRequests() > 0 || engine.queuedRequests() > 0) {
        ASSERT_TRUE(engine.step().ok());
        clock.advance(0.01);
        ASSERT_LT(++steps, 200u) << "engine failed to drain";
    }

    for (const RequestId id : ids) {
        const auto snap = engine.poll(id);
        ASSERT_TRUE(snap.ok());
        const RequestSnapshot &s = snap.value();
        ASSERT_TRUE(requestStateTerminal(s.state))
            << "request " << id << " left in state "
            << requestStateName(s.state);
        switch (s.state) {
          case RequestState::Finished:
            EXPECT_TRUE(s.terminal.ok());
            EXPECT_GT(s.stats.tokensDecoded, 0u);
            break;
          case RequestState::Shed:
            EXPECT_EQ(s.terminal.code(),
                      StatusCode::ResourceExhausted);
            break;
          case RequestState::DeadlineExceeded:
            EXPECT_EQ(s.terminal.code(), StatusCode::DeadlineExceeded);
            break;
          case RequestState::Cancelled:
            EXPECT_EQ(s.terminal.code(), StatusCode::Cancelled);
            break;
          default:
            FAIL() << "unexpected terminal state "
                   << requestStateName(s.state);
        }
    }
    // The budget held throughout, and retiring everything returned
    // every block to the arena.
    EXPECT_LE(engine.arena().peakBytes(), opts.kvBudgetBytes);
    EXPECT_EQ(engine.arena().blocksInUse(), 0u);
}

} // namespace
} // namespace serve
} // namespace figlut
