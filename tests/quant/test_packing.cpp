/** @file Tests for bit-plane packing and footprint accounting. */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "model/synthetic.h"
#include "quant/packing.h"

namespace figlut {
namespace {

BcqTensor
makeTensor(std::size_t rows, std::size_t cols, int bits, uint64_t seed)
{
    Rng rng(seed);
    const auto w = syntheticWeights(rows, cols, rng);
    BcqConfig cfg;
    cfg.bits = bits;
    cfg.iterations = 2;
    return quantizeBcq(w, cfg);
}

TEST(Packing, RoundTripExact)
{
    const auto t = makeTensor(8, 100, 3, 81);
    const auto packed = packBcq(t);
    const auto planes = unpackBcq(packed);
    ASSERT_EQ(planes.size(), 3u);
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(planes[static_cast<std::size_t>(i)] ==
                    t.planes[static_cast<std::size_t>(i)]);
}

TEST(Packing, BitAccessorMatchesMatrix)
{
    const auto t = makeTensor(4, 130, 2, 82);
    const auto packed = packBcq(t);
    for (int i = 0; i < 2; ++i)
        for (std::size_t r = 0; r < 4; ++r)
            for (std::size_t c = 0; c < 130; ++c)
                EXPECT_EQ(packed.planes[static_cast<std::size_t>(i)]
                              .bit(r, c),
                          t.planes[static_cast<std::size_t>(i)](r, c));
}

TEST(Packing, WordGeometry)
{
    const auto t = makeTensor(2, 130, 1, 83);
    const auto packed = packBcq(t);
    // 130 columns need 3 words of 64.
    EXPECT_EQ(packed.planes[0].wordsPerRow, 3u);
    EXPECT_EQ(packed.planes[0].words.size(), 6u);
    EXPECT_EQ(packed.planeBytes(), 6u * 8);
}

TEST(Packing, OutOfRangePanics)
{
    const auto t = makeTensor(2, 64, 1, 84);
    const auto packed = packBcq(t);
    EXPECT_THROW(packed.planes[0].bit(2, 0), PanicError);
    EXPECT_THROW(packed.planes[0].bit(0, 64), PanicError);
}

/** Oracle re-derivation of one chunk key straight from the planes. */
uint32_t
naiveChunkKey(const BcqTensor &t, int plane, std::size_t r,
              std::size_t c0, std::size_t c_end, int mu)
{
    uint32_t key = 0;
    for (int j = 0; j < mu; ++j) {
        const std::size_t c = c0 + static_cast<std::size_t>(j);
        const uint32_t bit =
            c < c_end ? t.planes[static_cast<std::size_t>(plane)](r, c)
                      : 1u;
        key = (key << 1) | bit;
    }
    return key;
}

TEST(PackedLutKeys, MatchesNaiveKeyDerivation)
{
    // Odd shape with grouped scales and a tail chunk in every group:
    // groupSize 13, mu 4 -> group chunks cover 13 = 3*4 + 1 columns.
    Rng rng(85);
    const auto w = syntheticWeights(6, 39, rng);
    BcqConfig bcfg;
    bcfg.bits = 3;
    bcfg.groupSize = 13;
    bcfg.iterations = 2;
    const auto t = quantizeBcq(w, bcfg);

    for (const int mu : {1, 3, 4, 5}) {
        const auto pk = packLutKeys(t, mu);
        ASSERT_EQ(pk.groups, t.groupsPerRow()) << "mu=" << mu;
        for (int i = 0; i < t.bits; ++i) {
            for (std::size_t g = 0; g < pk.groups; ++g) {
                const std::size_t c0 = g * t.groupSize;
                const std::size_t c1 =
                    std::min(t.cols, c0 + t.groupSize);
                for (std::size_t ch = 0; ch < pk.chunksInGroup(g);
                     ++ch) {
                    const std::size_t chunk =
                        pk.groupChunkStart[g] + ch;
                    for (std::size_t r = 0; r < t.rows; ++r) {
                        const uint32_t expect = naiveChunkKey(
                            t, i, r,
                            c0 + ch * static_cast<std::size_t>(mu), c1,
                            mu);
                        EXPECT_EQ(pk.key(i, chunk, r), expect)
                            << "mu=" << mu << " plane=" << i
                            << " chunk=" << chunk << " r=" << r;
                    }
                }
            }
        }
    }
}

TEST(PackedLutKeys, LayoutIsPlaneChunkRowContiguous)
{
    const auto t = makeTensor(5, 17, 2, 86);
    const auto pk = packLutKeys(t, 4);
    // 17 columns, one group, mu 4 -> 5 chunks (one padded tail).
    EXPECT_EQ(pk.totalChunks, 5u);
    EXPECT_EQ(pk.groups, 1u);
    EXPECT_EQ(pk.keys.size(), 2u * 5u * 5u);
    EXPECT_EQ(pk.keyBytes(), pk.keys.size() * sizeof(uint32_t));
    for (int i = 0; i < pk.bits; ++i) {
        for (std::size_t ch = 0; ch < pk.totalChunks; ++ch) {
            const uint32_t *base = pk.chunkKeys(i, ch);
            EXPECT_EQ(base,
                      pk.keys.data() +
                          (static_cast<std::size_t>(i) * pk.totalChunks +
                           ch) *
                              pk.rows);
            for (std::size_t r = 0; r < pk.rows; ++r)
                EXPECT_EQ(base[r], pk.key(i, ch, r));
        }
    }
}

TEST(PackedLutKeys, TailPaddingBitsAreOne)
{
    // cols 6, mu 4 -> second chunk covers columns 4..5 plus two pad
    // positions whose key bits must be 1 (weight +1 against zero x).
    const auto t = makeTensor(3, 6, 1, 87);
    const auto pk = packLutKeys(t, 4);
    ASSERT_EQ(pk.totalChunks, 2u);
    for (std::size_t r = 0; r < t.rows; ++r) {
        const uint32_t key = pk.key(0, 1, r);
        EXPECT_EQ(key & 0x3u, 0x3u) << "r=" << r;
    }
}

TEST(PackedLutKeys, InvalidArgumentsThrow)
{
    const auto t = makeTensor(2, 8, 1, 88);
    EXPECT_THROW(packLutKeys(t, 0), FatalError);
    EXPECT_THROW(packLutKeys(t, kMaxMu + 1), FatalError);
    auto broken = t;
    broken.groupSize = 0;
    EXPECT_THROW(packLutKeys(broken, 4), FatalError);
}

TEST(Footprint, BcqWeightBytes)
{
    // 64x64, q=3, per-row groups, with offset:
    // planes: 3*64*64/8 = 1536 B; meta: (3+1)*64 entries * 2 B = 512 B.
    EXPECT_EQ(bcqWeightBytes(64, 64, 3, 0, true), 1536u + 512u);
    // Without offset: meta = 3*64*2 = 384 B.
    EXPECT_EQ(bcqWeightBytes(64, 64, 3, 0, false), 1536u + 384u);
}

TEST(Footprint, GroupedMetaScales)
{
    // group 16 -> 4 groups/row: meta entries x4.
    EXPECT_EQ(bcqWeightBytes(64, 64, 2, 16, false),
              2u * 64 * 64 / 8 + 2u * 64 * 4 * 2);
}

TEST(Footprint, ActivationBytes)
{
    EXPECT_EQ(activationBytes(128, 32, 16), 128u * 32 * 2);
    EXPECT_EQ(activationBytes(128, 32, 32), 128u * 32 * 4);
    // Rounds up on non-byte widths.
    EXPECT_EQ(activationBytes(3, 1, 10), 4u);
}

} // namespace
} // namespace figlut
