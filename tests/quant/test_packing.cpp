/** @file Tests for bit-plane packing and footprint accounting. */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "model/synthetic.h"
#include "quant/packing.h"

namespace figlut {
namespace {

BcqTensor
makeTensor(std::size_t rows, std::size_t cols, int bits, uint64_t seed)
{
    Rng rng(seed);
    const auto w = syntheticWeights(rows, cols, rng);
    BcqConfig cfg;
    cfg.bits = bits;
    cfg.iterations = 2;
    return quantizeBcq(w, cfg);
}

TEST(Packing, RoundTripExact)
{
    const auto t = makeTensor(8, 100, 3, 81);
    const auto packed = packBcq(t);
    const auto planes = unpackBcq(packed);
    ASSERT_EQ(planes.size(), 3u);
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(planes[static_cast<std::size_t>(i)] ==
                    t.planes[static_cast<std::size_t>(i)]);
}

TEST(Packing, BitAccessorMatchesMatrix)
{
    const auto t = makeTensor(4, 130, 2, 82);
    const auto packed = packBcq(t);
    for (int i = 0; i < 2; ++i)
        for (std::size_t r = 0; r < 4; ++r)
            for (std::size_t c = 0; c < 130; ++c)
                EXPECT_EQ(packed.planes[static_cast<std::size_t>(i)]
                              .bit(r, c),
                          t.planes[static_cast<std::size_t>(i)](r, c));
}

TEST(Packing, WordGeometry)
{
    const auto t = makeTensor(2, 130, 1, 83);
    const auto packed = packBcq(t);
    // 130 columns need 3 words of 64.
    EXPECT_EQ(packed.planes[0].wordsPerRow, 3u);
    EXPECT_EQ(packed.planes[0].words.size(), 6u);
    EXPECT_EQ(packed.planeBytes(), 6u * 8);
}

TEST(Packing, OutOfRangePanics)
{
    const auto t = makeTensor(2, 64, 1, 84);
    const auto packed = packBcq(t);
    EXPECT_THROW(packed.planes[0].bit(2, 0), PanicError);
    EXPECT_THROW(packed.planes[0].bit(0, 64), PanicError);
}

TEST(Footprint, BcqWeightBytes)
{
    // 64x64, q=3, per-row groups, with offset:
    // planes: 3*64*64/8 = 1536 B; meta: (3+1)*64 entries * 2 B = 512 B.
    EXPECT_EQ(bcqWeightBytes(64, 64, 3, 0, true), 1536u + 512u);
    // Without offset: meta = 3*64*2 = 384 B.
    EXPECT_EQ(bcqWeightBytes(64, 64, 3, 0, false), 1536u + 384u);
}

TEST(Footprint, GroupedMetaScales)
{
    // group 16 -> 4 groups/row: meta entries x4.
    EXPECT_EQ(bcqWeightBytes(64, 64, 2, 16, false),
              2u * 64 * 64 / 8 + 2u * 64 * 4 * 2);
}

TEST(Footprint, ActivationBytes)
{
    EXPECT_EQ(activationBytes(128, 32, 16), 128u * 32 * 2);
    EXPECT_EQ(activationBytes(128, 32, 32), 128u * 32 * 4);
    // Rounds up on non-byte widths.
    EXPECT_EQ(activationBytes(3, 1, 10), 4u);
}

} // namespace
} // namespace figlut
