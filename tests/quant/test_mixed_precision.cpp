/** @file Tests for sensitivity-driven mixed-precision allocation. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "quant/mixed_precision.h"

namespace figlut {
namespace {

std::vector<LayerBudgetItem>
uniformLayers(std::size_t count, std::size_t params, double sens)
{
    std::vector<LayerBudgetItem> layers;
    for (std::size_t i = 0; i < count; ++i)
        layers.push_back({"layer" + std::to_string(i), params, sens});
    return layers;
}

TEST(MixedPrecision, HitsTargetAverage)
{
    const auto layers = uniformLayers(10, 1000, 1.0);
    MixedPrecisionConfig cfg;
    cfg.targetAvgBits = 2.4;
    cfg.minBits = 2;
    cfg.maxBits = 3;
    const auto plan = allocateBits(layers, cfg);
    EXPECT_NEAR(plan.avgBits, 2.4, 0.101); // 10 layers: 0.1 granularity
    EXPECT_LE(plan.avgBits, 2.4 + 1e-9);   // budget is a hard cap
}

TEST(MixedPrecision, SensitiveLayersGetBitsFirst)
{
    auto layers = uniformLayers(4, 1000, 1.0);
    layers[2].sensitivity = 100.0;
    MixedPrecisionConfig cfg;
    cfg.targetAvgBits = 2.25; // budget for exactly one upgrade
    cfg.minBits = 2;
    cfg.maxBits = 4;
    const auto plan = allocateBits(layers, cfg);
    EXPECT_EQ(plan.bitsPerLayer[2], 3);
    EXPECT_EQ(plan.bitsPerLayer[0], 2);
    EXPECT_EQ(plan.bitsPerLayer[1], 2);
    EXPECT_EQ(plan.bitsPerLayer[3], 2);
}

TEST(MixedPrecision, AllBitsInRange)
{
    auto layers = uniformLayers(7, 333, 1.0);
    layers[0].sensitivity = 50.0;
    layers[1].sensitivity = 25.0;
    MixedPrecisionConfig cfg;
    cfg.targetAvgBits = 3.0;
    cfg.minBits = 2;
    cfg.maxBits = 4;
    const auto plan = allocateBits(layers, cfg);
    for (const int b : plan.bitsPerLayer) {
        EXPECT_GE(b, 2);
        EXPECT_LE(b, 4);
    }
}

TEST(MixedPrecision, TargetAtFloorGivesAllMin)
{
    const auto layers = uniformLayers(5, 100, 1.0);
    MixedPrecisionConfig cfg;
    cfg.targetAvgBits = 2.0;
    cfg.minBits = 2;
    cfg.maxBits = 4;
    const auto plan = allocateBits(layers, cfg);
    for (const int b : plan.bitsPerLayer)
        EXPECT_EQ(b, 2);
    EXPECT_DOUBLE_EQ(plan.avgBits, 2.0);
}

TEST(MixedPrecision, TargetAtCeilingGivesAllMax)
{
    const auto layers = uniformLayers(5, 100, 1.0);
    MixedPrecisionConfig cfg;
    cfg.targetAvgBits = 4.0;
    cfg.minBits = 2;
    cfg.maxBits = 4;
    const auto plan = allocateBits(layers, cfg);
    for (const int b : plan.bitsPerLayer)
        EXPECT_EQ(b, 4);
}

TEST(MixedPrecision, UnevenLayerSizesRespectBudget)
{
    std::vector<LayerBudgetItem> layers = {
        {"big", 10000, 5.0},
        {"small1", 100, 4.0},
        {"small2", 100, 3.0},
    };
    MixedPrecisionConfig cfg;
    cfg.targetAvgBits = 2.02; // ~204 upgrade-bits: only the smalls fit
    cfg.minBits = 2;
    cfg.maxBits = 4;
    const auto plan = allocateBits(layers, cfg);
    EXPECT_EQ(plan.bitsPerLayer[0], 2);
    EXPECT_GE(plan.bitsPerLayer[1], 3);
    EXPECT_LE(plan.avgBits, 2.02 + 1e-9);
}

TEST(MixedPrecision, Deterministic)
{
    const auto layers = uniformLayers(9, 777, 2.0);
    MixedPrecisionConfig cfg;
    cfg.targetAvgBits = 2.5;
    const auto a = allocateBits(layers, cfg);
    const auto b = allocateBits(layers, cfg);
    EXPECT_EQ(a.bitsPerLayer, b.bitsPerLayer);
}

TEST(MixedPrecision, AverageBitsHelper)
{
    const auto layers = uniformLayers(2, 100, 1.0);
    EXPECT_DOUBLE_EQ(averageBits(layers, {2, 4}), 3.0);
}

TEST(MixedPrecision, InvalidInputsThrow)
{
    MixedPrecisionConfig cfg;
    EXPECT_THROW(allocateBits({}, cfg), FatalError);

    auto layers = uniformLayers(2, 10, 1.0);
    cfg.targetAvgBits = 9.0;
    EXPECT_THROW(allocateBits(layers, cfg), FatalError);
    cfg.targetAvgBits = 2.4;
    cfg.minBits = 5;
    cfg.maxBits = 4;
    EXPECT_THROW(allocateBits(layers, cfg), FatalError);

    layers[0].paramCount = 0;
    MixedPrecisionConfig ok;
    EXPECT_THROW(allocateBits(layers, ok), FatalError);
}

} // namespace
} // namespace figlut
