/** @file Tests for binary-coding quantization. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "model/synthetic.h"
#include "quant/bcq.h"

namespace figlut {
namespace {

TEST(Bcq, PlanesAreBinary)
{
    Rng rng(61);
    const auto w = syntheticWeights(8, 64, rng);
    BcqConfig cfg;
    cfg.bits = 3;
    const auto t = quantizeBcq(w, cfg);
    ASSERT_EQ(t.planes.size(), 3u);
    for (const auto &plane : t.planes)
        for (std::size_t i = 0; i < plane.size(); ++i)
            EXPECT_LE(plane.at(i), 1);
}

TEST(Bcq, SignConvention)
{
    Rng rng(62);
    const auto w = syntheticWeights(4, 32, rng);
    const auto t = quantizeBcq(w, BcqConfig{});
    for (int i = 0; i < t.bits; ++i)
        for (std::size_t r = 0; r < t.rows; ++r)
            for (std::size_t c = 0; c < t.cols; ++c) {
                const auto s = t.sign(i, r, c);
                EXPECT_TRUE(s == 1 || s == -1);
                EXPECT_EQ(s == 1,
                          t.planes[static_cast<std::size_t>(i)](r, c) ==
                              1);
            }
}

TEST(Bcq, OneBitMatchesSignTimesMeanAbs)
{
    // q=1 greedy+LS on a symmetric row: alpha = mean(|w|) exactly
    // after the final refit, codes = sign(w).
    MatrixD w(1, 4);
    w(0, 0) = 1.0;
    w(0, 1) = -2.0;
    w(0, 2) = 3.0;
    w(0, 3) = -4.0;
    BcqConfig cfg;
    cfg.bits = 1;
    const auto t = quantizeBcq(w, cfg);
    EXPECT_NEAR(t.alphas[0](0, 0), 2.5, 1e-9);
    EXPECT_EQ(t.sign(0, 0, 0), 1);
    EXPECT_EQ(t.sign(0, 0, 1), -1);
    EXPECT_EQ(t.sign(0, 0, 2), 1);
    EXPECT_EQ(t.sign(0, 0, 3), -1);
}

TEST(Bcq, TwoLevelRowIsExactWithOneBit)
{
    // Values {-a, +a} are exactly representable with q=1.
    MatrixD w(1, 8);
    for (std::size_t c = 0; c < 8; ++c)
        w(0, c) = (c % 2 == 0) ? 0.7 : -0.7;
    BcqConfig cfg;
    cfg.bits = 1;
    const auto t = quantizeBcq(w, cfg);
    EXPECT_NEAR(bcqMse(w, t), 0.0, 1e-18);
}

TEST(Bcq, FourLevelRowIsExactWithTwoBits)
{
    // Levels {-3, -1, +1, +3} = +/-2 +/-1 exactly.
    MatrixD w(1, 8);
    const double levels[4] = {-3.0, -1.0, 1.0, 3.0};
    for (std::size_t c = 0; c < 8; ++c)
        w(0, c) = levels[c % 4];
    BcqConfig cfg;
    cfg.bits = 2;
    const auto t = quantizeBcq(w, cfg);
    EXPECT_NEAR(bcqMse(w, t), 0.0, 1e-15);
}

TEST(Bcq, MoreBitsNeverWorse)
{
    Rng rng(63);
    const auto w = syntheticWeights(8, 128, rng);
    double prev = 1e30;
    for (int bits = 1; bits <= 6; ++bits) {
        BcqConfig cfg;
        cfg.bits = bits;
        const double mse = bcqMse(w, quantizeBcq(w, cfg));
        EXPECT_LE(mse, prev * 1.0001) << "bits " << bits;
        prev = mse;
    }
}

TEST(Bcq, AlternatingImprovesOnGreedy)
{
    Rng rng(64);
    const auto w = syntheticWeights(16, 128, rng);
    BcqConfig greedy;
    greedy.bits = 3;
    greedy.iterations = 0;
    BcqConfig refined;
    refined.bits = 3;
    refined.iterations = 12;
    EXPECT_LT(bcqMse(w, quantizeBcq(w, refined)),
              bcqMse(w, quantizeBcq(w, greedy)));
}

TEST(Bcq, OffsetHelpsAsymmetricData)
{
    Rng rng(65);
    // Strongly shifted weights: the offset absorbs the mean.
    const auto w = gaussianMatrix(8, 128, rng, 0.5, 0.1);
    BcqConfig plain;
    plain.bits = 2;
    BcqConfig offset;
    offset.bits = 2;
    offset.useOffset = true;
    EXPECT_LT(bcqMse(w, quantizeBcq(w, offset)),
              bcqMse(w, quantizeBcq(w, plain)));
}

TEST(Bcq, OffsetFieldZeroWithoutOffset)
{
    Rng rng(66);
    const auto w = syntheticWeights(4, 32, rng);
    const auto t = quantizeBcq(w, BcqConfig{});
    EXPECT_FALSE(t.hasOffset);
    for (std::size_t i = 0; i < t.offsets.size(); ++i)
        EXPECT_EQ(t.offsets.at(i), 0.0);
}

TEST(Bcq, GroupingReducesError)
{
    Rng rng(67);
    MatrixD w(4, 256);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 256; ++c)
            w(r, c) = rng.normal(0.0, c < 128 ? 0.01 : 1.0);
    BcqConfig whole;
    whole.bits = 2;
    BcqConfig grouped = whole;
    grouped.groupSize = 128;
    EXPECT_LT(bcqMse(w, quantizeBcq(w, grouped)),
              bcqMse(w, quantizeBcq(w, whole)));
}

TEST(Bcq, BetterThanNaiveSignQuantForGaussians)
{
    // The alternating optimizer must beat a single-alpha sign
    // quantizer at q=3 by a wide margin.
    Rng rng(68);
    const auto w = gaussianMatrix(8, 256, rng, 0.0, 1.0);
    BcqConfig cfg;
    cfg.bits = 3;
    const double mse = bcqMse(w, quantizeBcq(w, cfg));
    // Optimal 3-bit non-uniform quantization of a Gaussian has
    // SQNR ~ 14-16 dB; demand at least 10 dB.
    EXPECT_LT(mse, 0.1);
}

TEST(Bcq, StorageBitsAccounting)
{
    Rng rng(69);
    const auto w = syntheticWeights(8, 64, rng);
    BcqConfig cfg;
    cfg.bits = 3;
    cfg.useOffset = true;
    const auto t = quantizeBcq(w, cfg);
    // 3 planes * 8 * 64 bits + (3 alphas + 1 offset) * 8 rows * 16 bits
    EXPECT_EQ(t.storageBits(16), 3u * 8 * 64 + 4u * 8 * 16);
}

TEST(Bcq, InvalidConfigThrows)
{
    MatrixD w(2, 2, 1.0);
    BcqConfig cfg;
    cfg.bits = 0;
    EXPECT_THROW(quantizeBcq(w, cfg), FatalError);
    cfg.bits = 9;
    EXPECT_THROW(quantizeBcq(w, cfg), FatalError);
    EXPECT_THROW(quantizeBcq(MatrixD{}, BcqConfig{}), FatalError);
}

/** Property sweep: alternating optimization is monotone per round. */
class BcqIterationSweep : public ::testing::TestWithParam<int>
{};

TEST_P(BcqIterationSweep, MoreIterationsNeverWorse)
{
    Rng rng(70);
    const auto w = syntheticWeights(8, 96, rng);
    BcqConfig fewer;
    fewer.bits = 3;
    fewer.iterations = GetParam();
    BcqConfig more = fewer;
    more.iterations = GetParam() + 4;
    EXPECT_LE(bcqMse(w, quantizeBcq(w, more)),
              bcqMse(w, quantizeBcq(w, fewer)) * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(Iters, BcqIterationSweep,
                         ::testing::Values(0, 1, 2, 4, 8));

} // namespace
} // namespace figlut
