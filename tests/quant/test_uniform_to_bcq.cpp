/** @file Tests for the exact uniform -> BCQ conversion (paper Fig. 1). */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "model/synthetic.h"
#include "quant/uniform_to_bcq.h"

namespace figlut {
namespace {

TEST(UniformToBcq, CodeLevelRoundTrip)
{
    Rng rng(71);
    const auto w = syntheticWeights(8, 64, rng);
    for (int bits = 1; bits <= 8; ++bits) {
        RtnConfig cfg;
        cfg.bits = bits;
        const auto rtn = quantizeRtn(w, cfg);
        const auto bcq = uniformToBcq(rtn);
        for (std::size_t r = 0; r < rtn.rows; ++r)
            for (std::size_t c = 0; c < rtn.cols; ++c)
                EXPECT_EQ(bcqToUniformCode(bcq, r, c), rtn.codes(r, c))
                    << "bits=" << bits << " (" << r << "," << c << ")";
    }
}

TEST(UniformToBcq, DequantValuesAgree)
{
    Rng rng(72);
    const auto w = syntheticWeights(16, 128, rng);
    RtnConfig cfg;
    cfg.bits = 4;
    const auto rtn = quantizeRtn(w, cfg);
    const auto bcq = uniformToBcq(rtn);
    for (std::size_t r = 0; r < rtn.rows; ++r) {
        for (std::size_t c = 0; c < rtn.cols; ++c) {
            EXPECT_NEAR(bcq.dequant(r, c), rtn.dequant(r, c),
                        1e-12 * (1.0 + std::fabs(rtn.dequant(r, c))));
        }
    }
}

TEST(UniformToBcq, AlphasArePowersOfTwoTimesHalfScale)
{
    Rng rng(73);
    const auto w = syntheticWeights(4, 32, rng);
    RtnConfig cfg;
    cfg.bits = 4;
    const auto rtn = quantizeRtn(w, cfg);
    const auto bcq = uniformToBcq(rtn);
    for (std::size_t r = 0; r < rtn.rows; ++r) {
        const double s = rtn.scales(r, 0);
        for (int i = 0; i < 4; ++i)
            EXPECT_DOUBLE_EQ(
                bcq.alphas[static_cast<std::size_t>(i)](r, 0),
                s * std::ldexp(1.0, i - 1));
    }
}

TEST(UniformToBcq, OffsetAbsorbsZeroPoint)
{
    Rng rng(74);
    const auto w = syntheticWeights(4, 32, rng);
    RtnConfig cfg;
    cfg.bits = 3;
    const auto rtn = quantizeRtn(w, cfg);
    const auto bcq = uniformToBcq(rtn);
    EXPECT_TRUE(bcq.hasOffset);
    for (std::size_t r = 0; r < rtn.rows; ++r) {
        const double s = rtn.scales(r, 0);
        const double zp = rtn.zeroPoints(r, 0);
        EXPECT_DOUBLE_EQ(bcq.offsets(r, 0), s * (3.5 - zp));
    }
}

TEST(UniformToBcq, GroupStructureCarriesOver)
{
    Rng rng(75);
    const auto w = syntheticWeights(4, 96, rng);
    RtnConfig cfg;
    cfg.bits = 2;
    cfg.groupSize = 32;
    const auto rtn = quantizeRtn(w, cfg);
    const auto bcq = uniformToBcq(rtn);
    EXPECT_EQ(bcq.groupSize, 32u);
    EXPECT_EQ(bcq.groupsPerRow(), 3u);
    // Spot-check group-2 dequant equality.
    for (std::size_t c = 64; c < 96; ++c)
        EXPECT_NEAR(bcq.dequant(1, c), rtn.dequant(1, c), 1e-12);
}

TEST(UniformToBcq, MidCodeMapsToOffsetOnly)
{
    // Uniform code u with all plane bits expressing u: plane i bit is
    // bit i of the code.
    Rng rng(76);
    const auto w = syntheticWeights(2, 16, rng);
    RtnConfig cfg;
    cfg.bits = 4;
    const auto rtn = quantizeRtn(w, cfg);
    const auto bcq = uniformToBcq(rtn);
    for (std::size_t c = 0; c < 16; ++c) {
        const auto code = rtn.codes(0, c);
        for (int i = 0; i < 4; ++i)
            EXPECT_EQ(bcq.planes[static_cast<std::size_t>(i)](0, c),
                      (code >> i) & 1);
    }
}

} // namespace
} // namespace figlut
