/** @file Tests for RTN uniform quantization. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "model/synthetic.h"
#include "quant/rtn.h"

namespace figlut {
namespace {

TEST(Rtn, CodesStayInRange)
{
    Rng rng(51);
    const auto w = syntheticWeights(16, 64, rng);
    for (int bits = 1; bits <= 8; ++bits) {
        RtnConfig cfg;
        cfg.bits = bits;
        const auto t = quantizeRtn(w, cfg);
        const int qmax = (1 << bits) - 1;
        for (std::size_t i = 0; i < t.codes.size(); ++i)
            EXPECT_LE(t.codes.at(i), qmax);
    }
}

TEST(Rtn, RangeEndpointsAreExact)
{
    // min/max chosen so the zero point is integral: scale = 1.875/15
    // = 0.125 and zp = 8, putting both endpoints exactly on codes.
    MatrixD w(1, 4);
    w(0, 0) = -1.0;
    w(0, 1) = 0.875;
    w(0, 2) = 0.0;
    w(0, 3) = 0.5;
    RtnConfig cfg;
    cfg.bits = 4;
    const auto t = quantizeRtn(w, cfg);
    EXPECT_NEAR(t.dequant(0, 0), -1.0, 1e-12);
    EXPECT_NEAR(t.dequant(0, 1), 0.875, 1e-12);
    EXPECT_NEAR(t.dequant(0, 2), 0.0, 1e-12);
    EXPECT_NEAR(t.dequant(0, 3), 0.5, 1e-12);
}

TEST(Rtn, ConstantGroupIsExact)
{
    MatrixD w(2, 8, 0.37);
    RtnConfig cfg;
    cfg.bits = 3;
    const auto t = quantizeRtn(w, cfg);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 8; ++c)
            EXPECT_NEAR(t.dequant(r, c), 0.37, 1e-12);
}

TEST(Rtn, ErrorBoundedByHalfStep)
{
    Rng rng(52);
    const auto w = gaussianMatrix(8, 128, rng, 0.0, 0.1);
    RtnConfig cfg;
    cfg.bits = 4;
    const auto t = quantizeRtn(w, cfg);
    for (std::size_t r = 0; r < w.rows(); ++r) {
        for (std::size_t c = 0; c < w.cols(); ++c) {
            const double step = t.scales(r, 0);
            EXPECT_LE(std::fabs(w(r, c) - t.dequant(r, c)),
                      0.5 * step + 1e-12);
        }
    }
}

TEST(Rtn, MoreBitsNeverWorse)
{
    Rng rng(53);
    const auto w = syntheticWeights(8, 256, rng);
    double prev = 1e30;
    for (int bits = 1; bits <= 8; ++bits) {
        RtnConfig cfg;
        cfg.bits = bits;
        const double mse = rtnMse(w, quantizeRtn(w, cfg));
        EXPECT_LE(mse, prev * 1.0001) << "bits " << bits;
        prev = mse;
    }
}

TEST(Rtn, GroupingReducesError)
{
    Rng rng(54);
    // Rows with wildly varying column-block scales benefit from groups.
    MatrixD w(4, 256);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 256; ++c)
            w(r, c) = rng.normal(0.0, c < 128 ? 0.01 : 1.0);

    RtnConfig whole;
    whole.bits = 3;
    RtnConfig grouped;
    grouped.bits = 3;
    grouped.groupSize = 128;
    EXPECT_LT(rtnMse(w, quantizeRtn(w, grouped)),
              rtnMse(w, quantizeRtn(w, whole)));
}

TEST(Rtn, GroupCountAndMapping)
{
    Rng rng(55);
    const auto w = gaussianMatrix(2, 100, rng);
    RtnConfig cfg;
    cfg.bits = 4;
    cfg.groupSize = 32;
    const auto t = quantizeRtn(w, cfg);
    EXPECT_EQ(t.groupsPerRow(), 4u); // ceil(100/32)
    EXPECT_EQ(t.groupOfCol(0), 0u);
    EXPECT_EQ(t.groupOfCol(31), 0u);
    EXPECT_EQ(t.groupOfCol(32), 1u);
    EXPECT_EQ(t.groupOfCol(99), 3u);
}

TEST(Rtn, SymmetricModeCentresZeroPoint)
{
    Rng rng(56);
    const auto w = gaussianMatrix(4, 64, rng, 0.0, 0.2);
    RtnConfig cfg;
    cfg.bits = 4;
    cfg.symmetric = true;
    const auto t = quantizeRtn(w, cfg);
    for (std::size_t r = 0; r < 4; ++r)
        EXPECT_EQ(t.zeroPoints(r, 0), 7); // (2^4-1)/2
}

TEST(Rtn, InvalidConfigThrows)
{
    MatrixD w(2, 2, 1.0);
    RtnConfig cfg;
    cfg.bits = 0;
    EXPECT_THROW(quantizeRtn(w, cfg), FatalError);
    cfg.bits = 9;
    EXPECT_THROW(quantizeRtn(w, cfg), FatalError);
    EXPECT_THROW(quantizeRtn(MatrixD{}, RtnConfig{}), FatalError);
}

/** Parameterized sweep: dequant error shrinks ~2x per extra bit. */
class RtnBitSweep : public ::testing::TestWithParam<int>
{};

TEST_P(RtnBitSweep, ErrorScalesWithStep)
{
    const int bits = GetParam();
    Rng rng(57);
    const auto w = gaussianMatrix(16, 512, rng, 0.0, 1.0);
    RtnConfig cfg;
    cfg.bits = bits;
    const double rmse = std::sqrt(rtnMse(w, quantizeRtn(w, cfg)));
    // Uniform quantization RMSE ~ step / sqrt(12); step ~ range/2^bits.
    // Check the order of magnitude (range ~ 8 sigma here).
    const double step = 8.0 / ((1 << bits) - 1);
    EXPECT_LT(rmse, step);
    EXPECT_GT(rmse, step / 12.0);
}

INSTANTIATE_TEST_SUITE_P(Bits, RtnBitSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8));

} // namespace
} // namespace figlut
