/** @file Tests for the binary16 value type. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "numerics/fp16.h"

namespace figlut {
namespace {

TEST(Fp16, BasicValues)
{
    EXPECT_EQ(Fp16::fromDouble(1.0).bits(), 0x3C00u);
    EXPECT_EQ(Fp16::fromDouble(1.0).toDouble(), 1.0);
    EXPECT_EQ(Fp16::fromDouble(-0.5).toDouble(), -0.5);
    EXPECT_TRUE(Fp16::fromDouble(0.0).isZero());
    EXPECT_TRUE(Fp16::fromDouble(-0.0).isZero());
}

TEST(Fp16, Classification)
{
    EXPECT_TRUE(Fp16::fromDouble(1e9).isInf());
    EXPECT_TRUE(Fp16::fromDouble(std::nan("")).isNan());
    EXPECT_FALSE(Fp16::fromDouble(2.0).isNan());
    EXPECT_FALSE(Fp16::fromDouble(2.0).isInf());
}

TEST(Fp16, AddMatchesDoubleThenRound)
{
    // add(a, b) must equal rounding the exact sum.
    Rng rng(21);
    for (int i = 0; i < 20000; ++i) {
        const auto a = Fp16::fromDouble(rng.normal(0.0, 8.0));
        const auto b = Fp16::fromDouble(rng.normal(0.0, 8.0));
        const auto sum = Fp16::add(a, b);
        const auto expect = Fp16::fromDouble(a.toDouble() + b.toDouble());
        EXPECT_EQ(sum.bits(), expect.bits());
    }
}

TEST(Fp16, AddIsCommutative)
{
    Rng rng(22);
    for (int i = 0; i < 5000; ++i) {
        const auto a = Fp16::fromDouble(rng.normal(0.0, 100.0));
        const auto b = Fp16::fromDouble(rng.normal(0.0, 0.01));
        EXPECT_EQ(Fp16::add(a, b).bits(), Fp16::add(b, a).bits());
    }
}

TEST(Fp16, AddCancellationIsExact)
{
    const auto a = Fp16::fromDouble(1.5);
    EXPECT_TRUE(Fp16::add(a, a.negate()).isZero());
}

TEST(Fp16, SmallAdditionIsAbsorbed)
{
    // 2048 + 0.5 rounds back to 2048 in binary16 (ulp at 2048 is 2... 1).
    const auto big = Fp16::fromDouble(2048.0);
    const auto small = Fp16::fromDouble(0.5);
    EXPECT_EQ(Fp16::add(big, small).toDouble(), 2048.0);
}

TEST(Fp16, MulMatchesDoubleThenRound)
{
    Rng rng(23);
    for (int i = 0; i < 20000; ++i) {
        const auto a = Fp16::fromDouble(rng.normal(0.0, 4.0));
        const auto b = Fp16::fromDouble(rng.normal(0.0, 4.0));
        const auto prod = Fp16::mul(a, b);
        const auto expect = Fp16::fromDouble(a.toDouble() * b.toDouble());
        EXPECT_EQ(prod.bits(), expect.bits());
    }
}

TEST(Fp16, MulOverflowsToInf)
{
    const auto a = Fp16::fromDouble(300.0);
    EXPECT_TRUE(Fp16::mul(a, a).isInf());
}

TEST(Fp16, MulUnderflowsToSubnormalOrZero)
{
    const auto tiny = Fp16::fromDouble(std::ldexp(1.0, -14));
    const auto half = Fp16::fromDouble(0.5);
    // 2^-15 is a representable subnormal.
    EXPECT_EQ(Fp16::mul(tiny, half).toDouble(), std::ldexp(1.0, -15));
}

TEST(Fp16, NegateFlipsSignExactly)
{
    const auto a = Fp16::fromDouble(3.25);
    EXPECT_EQ(a.negate().toDouble(), -3.25);
    EXPECT_EQ(a.negate().negate().bits(), a.bits());
}

TEST(Fp16, UlpDistanceHelper)
{
    const auto a = Fp16::fromDouble(1.0);
    const auto b = Fp16::fromBits(static_cast<uint16_t>(a.bits() + 3));
    EXPECT_EQ(ulpDistance(a, b), 3u);
}

TEST(Fp16, ToFloatIsExactWidening)
{
    Rng rng(24);
    for (int i = 0; i < 10000; ++i) {
        const auto h = Fp16::fromDouble(rng.normal(0.0, 16.0));
        EXPECT_EQ(static_cast<double>(h.toFloat()), h.toDouble());
    }
}

} // namespace
} // namespace figlut
