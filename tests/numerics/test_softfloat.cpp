/** @file Tests for the generic IEEE rounding machinery. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "numerics/softfloat.h"

namespace figlut {
namespace {

TEST(FpSpec, Fp16Layout)
{
    EXPECT_EQ(kFp16Spec.bias(), 15);
    EXPECT_EQ(kFp16Spec.maxExp(), 15);
    EXPECT_EQ(kFp16Spec.minExp(), -14);
    EXPECT_EQ(kFp16Spec.totalBits(), 16);
}

TEST(FpSpec, Bf16Layout)
{
    EXPECT_EQ(kBf16Spec.bias(), 127);
    EXPECT_EQ(kBf16Spec.minExp(), -126);
    EXPECT_EQ(kBf16Spec.totalBits(), 16);
}

TEST(RoundToFormat, ExactSmallIntegers)
{
    for (int i = -100; i <= 100; ++i) {
        const auto bits = roundToFormat(static_cast<double>(i), kFp16Spec);
        EXPECT_EQ(decodeFormat(bits, kFp16Spec), static_cast<double>(i))
            << "integer " << i;
    }
}

TEST(RoundToFormat, SignedZeros)
{
    EXPECT_EQ(roundToFormat(0.0, kFp16Spec), 0x0000u);
    EXPECT_EQ(roundToFormat(-0.0, kFp16Spec), 0x8000u);
}

TEST(RoundToFormat, KnownFp16Patterns)
{
    EXPECT_EQ(roundToFormat(1.0, kFp16Spec), 0x3C00u);
    EXPECT_EQ(roundToFormat(-2.0, kFp16Spec), 0xC000u);
    EXPECT_EQ(roundToFormat(65504.0, kFp16Spec), 0x7BFFu); // max normal
    EXPECT_EQ(roundToFormat(5.960464477539063e-08, kFp16Spec), 0x0001u);
}

TEST(RoundToFormat, OverflowToInfinity)
{
    EXPECT_EQ(roundToFormat(1e6, kFp16Spec), 0x7C00u);
    EXPECT_EQ(roundToFormat(-1e6, kFp16Spec), 0xFC00u);
    // 65520 rounds up past max normal -> inf.
    EXPECT_EQ(roundToFormat(65520.0, kFp16Spec), 0x7C00u);
    // 65519.99 rounds down to max normal.
    EXPECT_EQ(roundToFormat(65519.99, kFp16Spec), 0x7BFFu);
}

TEST(RoundToFormat, InfinityAndNan)
{
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(roundToFormat(inf, kFp16Spec), 0x7C00u);
    EXPECT_EQ(roundToFormat(-inf, kFp16Spec), 0xFC00u);
    const auto nan_bits = roundToFormat(std::nan(""), kFp16Spec);
    EXPECT_TRUE(std::isnan(decodeFormat(nan_bits, kFp16Spec)));
}

TEST(RoundToFormat, SubnormalRange)
{
    // Smallest subnormal is 2^-24; half of it ties to even -> 0.
    const double min_sub = std::ldexp(1.0, -24);
    EXPECT_EQ(roundToFormat(min_sub, kFp16Spec), 0x0001u);
    EXPECT_EQ(roundToFormat(min_sub * 0.5, kFp16Spec), 0x0000u);
    EXPECT_EQ(roundToFormat(min_sub * 0.75, kFp16Spec), 0x0001u);
    // 1.5 * min_sub ties between 1 and 2 -> even (2).
    EXPECT_EQ(roundToFormat(min_sub * 1.5, kFp16Spec), 0x0002u);
}

TEST(RoundToFormat, SubnormalRoundsUpToNormal)
{
    // Just below the smallest normal (2^-14) rounds up into it.
    const double min_normal = std::ldexp(1.0, -14);
    const double just_below = min_normal * (1.0 - 1e-9);
    EXPECT_EQ(roundToFormat(just_below, kFp16Spec), 0x0400u);
}

TEST(RoundToFormat, TieToEvenOnMantissaBoundary)
{
    // 1 + 2^-11 is exactly between 1.0 and 1+2^-10: ties to even (1.0).
    EXPECT_EQ(roundToFormat(1.0 + std::ldexp(1.0, -11), kFp16Spec),
              0x3C00u);
    // 1 + 3*2^-11 ties between 1+2^-10 and 1+2^-9 -> even (1+2^-9).
    EXPECT_EQ(roundToFormat(1.0 + 3.0 * std::ldexp(1.0, -11), kFp16Spec),
              0x3C02u);
}

TEST(DecodeFormat, RoundTripAllFp16Patterns)
{
    // Exhaustive: every finite bit pattern decodes and re-encodes to
    // itself (canonical NaN excepted).
    for (uint32_t bits = 0; bits < 0x10000u; ++bits) {
        const double v = decodeFormat(bits, kFp16Spec);
        if (std::isnan(v))
            continue;
        EXPECT_EQ(roundToFormat(v, kFp16Spec), bits)
            << "pattern 0x" << std::hex << bits;
    }
}

TEST(DecodeFormat, RoundTripAllBf16Patterns)
{
    for (uint32_t bits = 0; bits < 0x10000u; ++bits) {
        const double v = decodeFormat(bits, kBf16Spec);
        if (std::isnan(v))
            continue;
        EXPECT_EQ(roundToFormat(v, kBf16Spec), bits)
            << "pattern 0x" << std::hex << bits;
    }
}

TEST(UlpDistance, AdjacentAndSignedPatterns)
{
    EXPECT_EQ(ulpDistance(0x3C00u, 0x3C00u, kFp16Spec), 0u);
    EXPECT_EQ(ulpDistance(0x3C00u, 0x3C01u, kFp16Spec), 1u);
    // +0 and -0 are adjacent on the monotone line (both map to 0).
    EXPECT_EQ(ulpDistance(0x0000u, 0x8000u, kFp16Spec), 0u);
    // +min_sub vs -min_sub is 2 ulps apart.
    EXPECT_EQ(ulpDistance(0x0001u, 0x8001u, kFp16Spec), 2u);
}

TEST(UlpDistance, NanIsMaximal)
{
    EXPECT_EQ(ulpDistance(0x7E00u, 0x3C00u, kFp16Spec), ~0u);
}

} // namespace
} // namespace figlut
