/** @file Tests for the runtime ActFormat descriptor. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "numerics/fp16.h"
#include "numerics/fp_format.h"

namespace figlut {
namespace {

TEST(ActFormat, NamesAndWidths)
{
    EXPECT_EQ(actFormatName(ActFormat::FP16), "FP16");
    EXPECT_EQ(actFormatName(ActFormat::BF16), "BF16");
    EXPECT_EQ(actFormatName(ActFormat::FP32), "FP32");
    EXPECT_EQ(significandBits(ActFormat::FP16), 11);
    EXPECT_EQ(significandBits(ActFormat::BF16), 8);
    EXPECT_EQ(significandBits(ActFormat::FP32), 24);
    EXPECT_EQ(storageBits(ActFormat::FP16), 16);
    EXPECT_EQ(storageBits(ActFormat::BF16), 16);
    EXPECT_EQ(storageBits(ActFormat::FP32), 32);
}

TEST(ActFormat, QuantizeMatchesFp16Type)
{
    for (const double v : {0.1, -3.7, 1234.5, 1e-5, 65504.0}) {
        EXPECT_EQ(quantizeToFormat(v, ActFormat::FP16),
                  Fp16::fromDouble(v).toDouble());
    }
}

TEST(ActFormat, QuantizeFp32MatchesFloatCast)
{
    for (const double v : {0.1, -3.7, 1e20, 1e-30}) {
        EXPECT_EQ(quantizeToFormat(v, ActFormat::FP32),
                  static_cast<double>(static_cast<float>(v)));
    }
}

TEST(ActFormat, QuantizeIsIdempotent)
{
    for (const auto fmt : kAllActFormats) {
        const double q = quantizeToFormat(0.123456789, fmt);
        EXPECT_EQ(quantizeToFormat(q, fmt), q)
            << actFormatName(fmt);
    }
}

TEST(ActFormat, EncodeMatchesBitPatterns)
{
    EXPECT_EQ(encodeFormat(1.0, ActFormat::FP16), 0x3C00u);
    EXPECT_EQ(encodeFormat(1.0, ActFormat::BF16), 0x3F80u);
    EXPECT_EQ(encodeFormat(1.0f, ActFormat::FP32), 0x3F800000u);
}

TEST(ActFormat, ParseAcceptsCaseInsensitive)
{
    EXPECT_EQ(parseActFormat("fp16"), ActFormat::FP16);
    EXPECT_EQ(parseActFormat("Bf16"), ActFormat::BF16);
    EXPECT_EQ(parseActFormat("FP32"), ActFormat::FP32);
    EXPECT_THROW(parseActFormat("fp8"), FatalError);
}

TEST(ActFormat, SpecsAreConsistent)
{
    for (const auto fmt : kAllActFormats) {
        const auto &spec = actFormatSpec(fmt);
        EXPECT_EQ(spec.mantBits + 1, significandBits(fmt));
    }
}

} // namespace
} // namespace figlut
