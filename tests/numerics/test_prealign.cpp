/** @file Tests for mantissa pre-alignment (iFPU/FIGNA/FIGLUT-I path). */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "numerics/prealign.h"

namespace figlut {
namespace {

TEST(PreAlign, AllZeroBlock)
{
    const auto block = preAlign({0.0, 0.0, 0.0}, ActFormat::FP16);
    EXPECT_TRUE(block.allZero);
    for (const auto m : block.mantissas)
        EXPECT_EQ(m, 0);
}

TEST(PreAlign, SingleValueIsExact)
{
    const auto block = preAlign({1.5}, ActFormat::FP16, 24);
    EXPECT_FALSE(block.allZero);
    EXPECT_DOUBLE_EQ(block.valueAt(0), 1.5);
}

TEST(PreAlign, PowerOfTwoValuesAreExact)
{
    const std::vector<double> vals = {4.0, 2.0, 1.0, 0.5, 0.25};
    const auto block = preAlign(vals, ActFormat::FP16, 24);
    for (std::size_t i = 0; i < vals.size(); ++i)
        EXPECT_DOUBLE_EQ(block.valueAt(i), vals[i]);
    EXPECT_EQ(block.sharedExp, 2); // 4.0 = 1.0 * 2^2
}

TEST(PreAlign, Fp16ValuesExactWith24FracBits)
{
    // Any fp16 value within 13 octaves of the max is exactly
    // representable on a 24-bit-aligned datapath (10 mantissa bits +
    // 14 shift <= 24).
    Rng rng(41);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<double> vals(16);
        for (auto &v : vals)
            v = quantizeToFormat(rng.normal(0.0, 2.0), ActFormat::FP16);
        const auto block = preAlign(vals, ActFormat::FP16, 24);
        for (std::size_t i = 0; i < vals.size(); ++i) {
            if (vals[i] == 0.0)
                continue;
            int e = 0;
            (void)std::frexp(std::fabs(vals[i]), &e);
            if (block.sharedExp - (e - 1) <= 13) {
                EXPECT_DOUBLE_EQ(block.valueAt(i), vals[i])
                    << "element " << i;
            }
        }
    }
}

TEST(PreAlign, NarrowDatapathLosesSmallValues)
{
    // With only 8 fraction bits, a value 2^-9 below the max vanishes.
    const auto block = preAlign({1.0, std::ldexp(1.0, -9)},
                                ActFormat::FP16, 8);
    EXPECT_DOUBLE_EQ(block.valueAt(0), 1.0);
    EXPECT_DOUBLE_EQ(block.valueAt(1), 0.0);
}

TEST(PreAlign, TruncateVsRneRounding)
{
    // Second value scales to exactly 1.5 on a 5-fraction-bit datapath:
    // truncation floors to 1, RNE resolves the tie upward to 2.
    const std::vector<double> vals = {1.0, 0.046875};
    const auto trunc = preAlign(vals, ActFormat::FP16, 5,
                                AlignRounding::Truncate);
    const auto rne = preAlign(vals, ActFormat::FP16, 5,
                              AlignRounding::NearestEven);
    EXPECT_LE(trunc.mantissas[1], rne.mantissas[1]);
    EXPECT_EQ(trunc.mantissas[1], 1);  // floor(1.5) = 1
    EXPECT_EQ(rne.mantissas[1], 2);    // RNE(1.5) = 2
}

TEST(PreAlign, SharedExpTracksMaximum)
{
    const auto block = preAlign({0.25, -64.0, 3.0}, ActFormat::FP16, 24);
    EXPECT_EQ(block.sharedExp, 6); // 64 = 2^6
}

TEST(PreAlign, RejectsNonFinite)
{
    EXPECT_THROW(preAlign({1.0, 1e9}, ActFormat::FP16, 24), FatalError);
    // (1e9 overflows fp16 to inf)
}

TEST(PreAlign, RejectsBadFracBits)
{
    EXPECT_THROW(preAlign({1.0}, ActFormat::FP16, 1), FatalError);
    EXPECT_THROW(preAlign({1.0}, ActFormat::FP16, 61), FatalError);
}

TEST(AlignedDot, MatchesDoubleDotExactly)
{
    Rng rng(42);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<double> vals(32);
        for (auto &v : vals)
            v = quantizeToFormat(rng.normal(0.0, 1.0), ActFormat::FP16);
        const auto block = preAlign(vals, ActFormat::FP16, 24);

        std::vector<int32_t> w(32);
        for (auto &wi : w)
            wi = static_cast<int32_t>(rng.uniformInt(-8, 7));

        double expect = 0.0;
        for (std::size_t i = 0; i < vals.size(); ++i)
            expect += block.valueAt(i) * w[i];
        EXPECT_DOUBLE_EQ(alignedDot(block, w), expect);
    }
}

TEST(AlignedDot, LengthMismatchPanics)
{
    const auto block = preAlign({1.0, 2.0}, ActFormat::FP16, 24);
    EXPECT_THROW(alignedDot(block, {1}), PanicError);
}

TEST(AlignedSignedSum, MatchesManualSum)
{
    const auto block = preAlign({1.0, 2.0, 4.0}, ActFormat::FP16, 24);
    const auto sum = alignedSignedSum(block, {1, -1, 1});
    EXPECT_DOUBLE_EQ(static_cast<double>(sum) * block.scale(), 3.0);
}

TEST(AlignedSignedSum, RejectsBadSigns)
{
    const auto block = preAlign({1.0}, ActFormat::FP16, 24);
    EXPECT_THROW(alignedSignedSum(block, {0}), PanicError);
}

TEST(PreAlign, WorksForAllFormats)
{
    Rng rng(43);
    for (const auto fmt : kAllActFormats) {
        std::vector<double> vals(8);
        for (auto &v : vals)
            v = quantizeToFormat(rng.normal(0.0, 1.0), fmt);
        const auto block = preAlign(vals, fmt, 30);
        for (std::size_t i = 0; i < vals.size(); ++i) {
            EXPECT_NEAR(block.valueAt(i), vals[i],
                        std::ldexp(std::fabs(vals[i]) + 1.0, -20))
                << actFormatName(fmt);
        }
    }
}

} // namespace
} // namespace figlut
