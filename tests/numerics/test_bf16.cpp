/** @file Tests for the bfloat16 value type. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/rng.h"
#include "numerics/bf16.h"

namespace figlut {
namespace {

/** Reference bf16 encoding: round-to-nearest-even on a float's bits. */
uint16_t
referenceBf16(float f)
{
    uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    const uint32_t lsb = (bits >> 16) & 1u;
    const uint32_t rounding = 0x7FFFu + lsb;
    return static_cast<uint16_t>((bits + rounding) >> 16);
}

TEST(Bf16, BasicValues)
{
    EXPECT_EQ(Bf16::fromDouble(1.0).toDouble(), 1.0);
    EXPECT_EQ(Bf16::fromDouble(-2.0).toDouble(), -2.0);
    EXPECT_TRUE(Bf16::fromDouble(0.0).isZero());
}

TEST(Bf16, MatchesTruncationReferenceOnNormals)
{
    Rng rng(31);
    for (int i = 0; i < 30000; ++i) {
        const float f = static_cast<float>(rng.normal(0.0, 50.0));
        const auto ours = Bf16::fromDouble(static_cast<double>(f));
        EXPECT_EQ(ours.bits(), referenceBf16(f))
            << "value " << f;
    }
}

TEST(Bf16, WideDynamicRange)
{
    // bf16 shares float32's exponent range: 1e30 is finite.
    EXPECT_FALSE(Bf16::fromDouble(1e30).isInf());
    EXPECT_TRUE(Bf16::fromDouble(1e40).isInf());
}

TEST(Bf16, CoarseMantissa)
{
    // Only 8 significand bits: 257 rounds to 256.
    EXPECT_EQ(Bf16::fromDouble(257.0).toDouble(), 256.0);
    // 258 is representable (256 * 1.0078125).
    EXPECT_EQ(Bf16::fromDouble(258.0).toDouble(), 258.0);
}

TEST(Bf16, AddMatchesDoubleThenRound)
{
    Rng rng(32);
    for (int i = 0; i < 20000; ++i) {
        const auto a = Bf16::fromDouble(rng.normal(0.0, 10.0));
        const auto b = Bf16::fromDouble(rng.normal(0.0, 10.0));
        const auto sum = Bf16::add(a, b);
        const auto expect = Bf16::fromDouble(a.toDouble() + b.toDouble());
        EXPECT_EQ(sum.bits(), expect.bits());
    }
}

TEST(Bf16, MulMatchesDoubleThenRound)
{
    Rng rng(33);
    for (int i = 0; i < 20000; ++i) {
        const auto a = Bf16::fromDouble(rng.normal(0.0, 3.0));
        const auto b = Bf16::fromDouble(rng.normal(0.0, 3.0));
        const auto prod = Bf16::mul(a, b);
        const auto expect = Bf16::fromDouble(a.toDouble() * b.toDouble());
        EXPECT_EQ(prod.bits(), expect.bits());
    }
}

TEST(Bf16, NanAndInfClassification)
{
    EXPECT_TRUE(Bf16::fromDouble(std::nan("")).isNan());
    EXPECT_TRUE(Bf16::fromDouble(1e40).isInf());
    EXPECT_FALSE(Bf16::fromDouble(5.0).isInf());
}

TEST(Bf16, NegateRoundTrips)
{
    const auto a = Bf16::fromDouble(7.5);
    EXPECT_EQ(a.negate().toDouble(), -7.5);
    EXPECT_EQ(a.negate().negate().bits(), a.bits());
}

TEST(Bf16, UlpDistanceHelper)
{
    const auto a = Bf16::fromDouble(1.0);
    const auto b = Bf16::fromBits(static_cast<uint16_t>(a.bits() + 2));
    EXPECT_EQ(ulpDistance(a, b), 2u);
}

} // namespace
} // namespace figlut
