/**
 * @file
 * Percentile estimator and SLO/goodput summarization tests: exact
 * nearest-rank order statistics on known distributions, and the
 * request-outcome aggregation both load drivers share.
 */

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "load/latency.h"

namespace figlut::bench {
namespace {

TEST(PercentileTest, ExactOnOneToHundred)
{
    // Insert 1..100 shuffled: nearest-rank pXX is exactly XX.
    std::vector<double> values(100);
    for (std::size_t i = 0; i < values.size(); ++i)
        values[i] = static_cast<double>(i + 1);
    std::mt19937 shuffler(7);
    std::shuffle(values.begin(), values.end(), shuffler);

    PercentileEstimator estimator;
    for (const double v : values)
        estimator.add(v);
    EXPECT_EQ(estimator.count(), 100u);
    EXPECT_DOUBLE_EQ(estimator.percentile(50.0), 50.0);
    EXPECT_DOUBLE_EQ(estimator.percentile(95.0), 95.0);
    EXPECT_DOUBLE_EQ(estimator.percentile(99.0), 99.0);
    EXPECT_DOUBLE_EQ(estimator.percentile(100.0), 100.0);
    EXPECT_DOUBLE_EQ(estimator.percentile(1.0), 1.0);
    EXPECT_DOUBLE_EQ(estimator.mean(), 50.5);
    EXPECT_DOUBLE_EQ(estimator.min(), 1.0);
    EXPECT_DOUBLE_EQ(estimator.max(), 100.0);
}

TEST(PercentileTest, SmallSampleCounts)
{
    PercentileEstimator estimator;
    estimator.add(42.0);
    // One sample: every percentile is that sample.
    EXPECT_DOUBLE_EQ(estimator.percentile(1.0), 42.0);
    EXPECT_DOUBLE_EQ(estimator.percentile(50.0), 42.0);
    EXPECT_DOUBLE_EQ(estimator.percentile(99.0), 42.0);

    estimator.add(10.0);
    // Two samples: p50 -> rank 1 (the smaller), p99 -> rank 2.
    EXPECT_DOUBLE_EQ(estimator.percentile(50.0), 10.0);
    EXPECT_DOUBLE_EQ(estimator.percentile(99.0), 42.0);
}

TEST(PercentileTest, EmptyIsZero)
{
    const PercentileEstimator estimator;
    EXPECT_EQ(estimator.count(), 0u);
    EXPECT_DOUBLE_EQ(estimator.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(estimator.mean(), 0.0);
    EXPECT_DOUBLE_EQ(estimator.min(), 0.0);
    EXPECT_DOUBLE_EQ(estimator.max(), 0.0);
}

TEST(PercentileTest, AddAfterQueryInvalidatesCache)
{
    PercentileEstimator estimator;
    estimator.add(1.0);
    EXPECT_DOUBLE_EQ(estimator.percentile(99.0), 1.0);
    estimator.add(5.0);
    EXPECT_DOUBLE_EQ(estimator.percentile(99.0), 5.0);
}

TEST(PercentileTest, SummarizeLatencyFillsEveryField)
{
    PercentileEstimator estimator;
    for (int i = 1; i <= 10; ++i)
        estimator.add(static_cast<double>(i));
    const LatencySummary s = summarizeLatency(estimator);
    EXPECT_EQ(s.count, 10u);
    EXPECT_DOUBLE_EQ(s.mean, 5.5);
    EXPECT_DOUBLE_EQ(s.p50, 5.0);
    EXPECT_DOUBLE_EQ(s.p95, 10.0);
    EXPECT_DOUBLE_EQ(s.p99, 10.0);
    EXPECT_DOUBLE_EQ(s.max, 10.0);
}

RequestOutcome
outcomeAt(double arrivalS, double ttftS, std::vector<double> tokens)
{
    RequestOutcome outcome;
    outcome.arrivalS = arrivalS;
    outcome.ttftS = ttftS;
    outcome.tokenTimesS = std::move(tokens);
    outcome.outputTokens = outcome.tokenTimesS.size();
    return outcome;
}

TEST(SloTest, MeetsSloCases)
{
    const SloSpec slo{100.0, 10.0}; // ttft <= 100ms, mean itl <= 10ms

    // Good: 50ms TTFT, 5ms gaps.
    EXPECT_TRUE(
        meetsSlo(outcomeAt(0.0, 0.05, {0.05, 0.055, 0.06}), slo));
    // TTFT violation.
    EXPECT_FALSE(
        meetsSlo(outcomeAt(0.0, 0.2, {0.2, 0.205}), slo));
    // Mean-ITL violation: 50ms gaps.
    EXPECT_FALSE(
        meetsSlo(outcomeAt(0.0, 0.05, {0.05, 0.1, 0.15}), slo));
    // Single token meets the ITL bound vacuously.
    EXPECT_TRUE(meetsSlo(outcomeAt(0.0, 0.05, {0.05}), slo));
    // Shed requests never meet the SLO.
    RequestOutcome shed = outcomeAt(0.0, 0.0, {});
    shed.shed = true;
    EXPECT_FALSE(meetsSlo(shed, slo));
    // Token-less (incomplete) requests never meet the SLO.
    EXPECT_FALSE(meetsSlo(outcomeAt(0.0, 0.0, {}), slo));
}

TEST(SloTest, SummarizeRunAggregates)
{
    LoadRun run;
    // Request 0: meets the SLO, 2 tokens.
    run.requests.push_back(outcomeAt(0.0, 0.05, {0.05, 0.06}));
    // Request 1: TTFT blows the SLO, 3 tokens.
    run.requests.push_back(outcomeAt(0.0, 0.5, {0.5, 0.51, 0.52}));
    // Request 2: shed.
    RequestOutcome shed;
    shed.arrivalS = 0.1;
    shed.shed = true;
    run.requests.push_back(shed);
    run.queueDepth = {0, 2, 1};
    run.stepSeconds = {0.01, 0.02, 0.03};

    const SloSpec slo{100.0, 10.0};
    const LoadSummary s = summarizeRun(run, slo);
    EXPECT_EQ(s.requests, 3u);
    EXPECT_EQ(s.shed, 1u);
    EXPECT_EQ(s.completed, 2u);
    EXPECT_EQ(s.sloMet, 1u);
    EXPECT_DOUBLE_EQ(s.shedRate, 1.0 / 3.0);

    // TTFT samples: 50ms and 500ms.
    EXPECT_EQ(s.ttftMs.count, 2u);
    EXPECT_DOUBLE_EQ(s.ttftMs.p50, 50.0);
    EXPECT_DOUBLE_EQ(s.ttftMs.max, 500.0);
    // ITL samples: 10ms, 10ms, 10ms.
    EXPECT_EQ(s.itlMs.count, 3u);
    EXPECT_NEAR(s.itlMs.p50, 10.0, 1e-9);

    // Makespan: first arrival 0.0 to last token 0.52; 5 tokens total,
    // 2 of them from the SLO-meeting request.
    EXPECT_DOUBLE_EQ(s.makespanS, 0.52);
    EXPECT_DOUBLE_EQ(s.tokensPerS, 5.0 / 0.52);
    EXPECT_DOUBLE_EQ(s.goodputTokPerS, 2.0 / 0.52);

    EXPECT_DOUBLE_EQ(s.queueDepthMean, 1.0);
    EXPECT_DOUBLE_EQ(s.queueDepthMax, 2.0);
    EXPECT_DOUBLE_EQ(s.msPerStepMean, 20.0);
}

TEST(SloTest, EmptyRunIsAllZero)
{
    const LoadSummary s = summarizeRun(LoadRun{}, SloSpec{});
    EXPECT_EQ(s.requests, 0u);
    EXPECT_EQ(s.completed, 0u);
    EXPECT_DOUBLE_EQ(s.shedRate, 0.0);
    EXPECT_DOUBLE_EQ(s.tokensPerS, 0.0);
    EXPECT_DOUBLE_EQ(s.goodputTokPerS, 0.0);
    EXPECT_DOUBLE_EQ(s.msPerStepMean, 0.0);
}

} // namespace
} // namespace figlut::bench
