/**
 * @file
 * Arrival-trace generator tests: seeded reproducibility, sortedness,
 * Poisson mean-rate accuracy, bursty clustering at the same mean rate,
 * length-range and mixed-class behavior, and the built-in scenario
 * registry the harness and CI smoke sweep.
 */

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "load/trace.h"

namespace figlut::bench {
namespace {

ScenarioSpec
poissonSpec()
{
    ScenarioSpec spec;
    spec.name = "poisson-test";
    spec.arrivals = ArrivalKind::Poisson;
    spec.ratePerS = 32.0;
    spec.prompt = {8, 32};
    spec.output = {4, 16};
    return spec;
}

ScenarioSpec
burstySpec()
{
    ScenarioSpec spec = poissonSpec();
    spec.name = "bursty-test";
    spec.arrivals = ArrivalKind::Bursty;
    spec.burstSize = 8;
    spec.burstJitterS = 5e-4;
    return spec;
}

TEST(TraceTest, DeterministicInSeed)
{
    const auto spec = poissonSpec();
    const auto a = generateTrace(spec, 200, 7);
    const auto b = generateTrace(spec, 200, 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrivalS, b[i].arrivalS) << i;
        EXPECT_EQ(a[i].promptTokens, b[i].promptTokens) << i;
        EXPECT_EQ(a[i].outputTokens, b[i].outputTokens) << i;
        EXPECT_EQ(a[i].seed, b[i].seed) << i;
    }
}

TEST(TraceTest, SeedChangesTheTrace)
{
    const auto spec = poissonSpec();
    const auto a = generateTrace(spec, 50, 1);
    const auto b = generateTrace(spec, 50, 2);
    bool anyDifferent = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        anyDifferent = anyDifferent || a[i].arrivalS != b[i].arrivalS;
    EXPECT_TRUE(anyDifferent);
}

TEST(TraceTest, ArrivalsSortedAndLengthsInRange)
{
    for (const auto &spec : {poissonSpec(), burstySpec()}) {
        const auto trace = generateTrace(spec, 500, 11);
        ASSERT_EQ(trace.size(), 500u);
        for (std::size_t i = 0; i < trace.size(); ++i) {
            if (i > 0) {
                EXPECT_LE(trace[i - 1].arrivalS, trace[i].arrivalS)
                    << spec.name << " request " << i;
            }
            EXPECT_GE(trace[i].arrivalS, 0.0);
            EXPECT_GE(trace[i].promptTokens, spec.prompt.lo);
            EXPECT_LE(trace[i].promptTokens, spec.prompt.hi);
            EXPECT_GE(trace[i].outputTokens, spec.output.lo);
            EXPECT_LE(trace[i].outputTokens, spec.output.hi);
            EXPECT_GE(trace[i].outputTokens, 1u);
        }
    }
}

TEST(TraceTest, PoissonMeanInterArrivalMatchesRate)
{
    const auto spec = poissonSpec();
    const auto trace = generateTrace(spec, 4000, 3);
    const double spanS = trace.back().arrivalS - trace.front().arrivalS;
    const double meanGapS =
        spanS / static_cast<double>(trace.size() - 1);
    // 4000 exponential gaps: the sample mean is within a few percent
    // of 1/rate with overwhelming probability; 15% is a safe bound.
    EXPECT_NEAR(meanGapS, 1.0 / spec.ratePerS,
                0.15 / spec.ratePerS);
}

TEST(TraceTest, BurstyKeepsTheMeanRateButClusters)
{
    const auto bursty = generateTrace(burstySpec(), 4000, 3);
    const double spanS =
        bursty.back().arrivalS - bursty.front().arrivalS;
    const double meanGapS =
        spanS / static_cast<double>(bursty.size() - 1);
    EXPECT_NEAR(meanGapS, 1.0 / burstySpec().ratePerS,
                0.2 / burstySpec().ratePerS);

    // Clustering signature: most gaps are the tiny intra-burst jitter
    // (7 of every 8 arrivals for burstSize 8), far below the mean gap.
    std::size_t tinyGaps = 0;
    for (std::size_t i = 1; i < bursty.size(); ++i)
        if (bursty[i].arrivalS - bursty[i - 1].arrivalS <=
            2.0 * burstySpec().burstJitterS)
            ++tinyGaps;
    EXPECT_GT(tinyGaps, bursty.size() / 2);
}

TEST(TraceTest, MixedLongFractionDrawsLongRanges)
{
    ScenarioSpec spec = poissonSpec();
    spec.longFraction = 0.3;
    spec.longPrompt = {96, 160};
    spec.longOutput = {24, 48};
    const auto trace = generateTrace(spec, 2000, 5);
    std::size_t longCount = 0;
    for (const auto &request : trace) {
        const bool isLong = request.promptTokens >= spec.longPrompt.lo;
        const bool isShort = request.promptTokens <= spec.prompt.hi;
        ASSERT_TRUE(isLong || isShort);
        if (isLong) {
            ++longCount;
            EXPECT_LE(request.promptTokens, spec.longPrompt.hi);
            EXPECT_GE(request.outputTokens, spec.longOutput.lo);
            EXPECT_LE(request.outputTokens, spec.longOutput.hi);
        }
    }
    const double fraction = static_cast<double>(longCount) /
                            static_cast<double>(trace.size());
    EXPECT_NEAR(fraction, spec.longFraction, 0.05);
}

TEST(TraceTest, LongFractionOneIsAllLong)
{
    ScenarioSpec spec = poissonSpec();
    spec.longFraction = 1.0;
    for (const auto &request : generateTrace(spec, 100, 9)) {
        EXPECT_GE(request.promptTokens, spec.longPrompt.lo);
        EXPECT_LE(request.promptTokens, spec.longPrompt.hi);
    }
}

TEST(TraceTest, PerRequestSeedsAreDistinct)
{
    const auto trace = generateTrace(poissonSpec(), 300, 13);
    std::set<std::uint64_t> seeds;
    for (const auto &request : trace)
        seeds.insert(request.seed);
    EXPECT_EQ(seeds.size(), trace.size());
}

TEST(TraceTest, BuiltinScenarioRegistry)
{
    const auto &scenarios = builtinScenarios();
    ASSERT_EQ(scenarios.size(), 3u);
    EXPECT_EQ(scenarios[0].name, "poisson-short-chat");
    EXPECT_EQ(scenarios[1].name, "bursty-short-chat");
    EXPECT_EQ(scenarios[2].name, "mixed-long-doc");
    EXPECT_EQ(scenarios[1].arrivals, ArrivalKind::Bursty);
    EXPECT_GT(scenarios[2].longFraction, 0.0);

    for (const auto &scenario : scenarios) {
        const ScenarioSpec *found = scenarioByName(scenario.name);
        ASSERT_NE(found, nullptr) << scenario.name;
        EXPECT_EQ(found->name, scenario.name);
    }
    EXPECT_EQ(scenarioByName("no-such-scenario"), nullptr);
}

TEST(TraceTest, CountZeroIsEmpty)
{
    EXPECT_TRUE(generateTrace(poissonSpec(), 0, 1).empty());
}

} // namespace
} // namespace figlut::bench
