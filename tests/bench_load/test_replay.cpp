/**
 * @file
 * Trace-replay tests: determinism, shed/queue behavior, and the pin
 * that sim::replayTrace() mirrors serve::Engine's continuous-batching
 * schedule exactly — an Engine driven on a VirtualClock advanced by
 * the identical per-step Accelerator scores produces bit-identical
 * shed sets, token completion times, and queue depths.
 */

#include <unordered_map>

#include <gtest/gtest.h>

#include "figlut/figlut.h"

namespace figlut {
namespace {

OptConfig
tinyModel()
{
    OptConfig model;
    model.name = "OPT-replay-test";
    model.hidden = 64;
    model.layers = 1;
    model.heads = 2;
    model.ffn = 128;
    return model;
}

HwConfig
testHw()
{
    HwConfig hw;
    hw.engine = EngineKind::FIGLUT_I;
    return hw;
}

/** A small trace with simultaneous arrivals to force queuing. */
std::vector<ReplayRequest>
contendedTrace()
{
    return {
        {0.0, 4, 3}, {0.0, 6, 2}, {0.0, 5, 1}, {0.0, 4, 2},
        {1e-4, 3, 2}, {2e-3, 8, 3},
    };
}

TEST(TraceReplayTest, Deterministic)
{
    ReplayOptions options;
    options.maxBatch = 2;
    options.maxQueue = 2;
    const auto trace = contendedTrace();
    const auto a = replayTrace(tinyModel(), testHw(), options, trace);
    const auto b = replayTrace(tinyModel(), testHw(), options, trace);
    ASSERT_EQ(a.steps, b.steps);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    EXPECT_EQ(a.endS, b.endS);
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].shed, b.requests[i].shed) << i;
        EXPECT_EQ(a.requests[i].tokenTimesS,
                  b.requests[i].tokenTimesS)
            << i;
    }
    EXPECT_EQ(a.stepSeconds, b.stepSeconds);
    EXPECT_EQ(a.queueDepth, b.queueDepth);
}

TEST(TraceReplayTest, ShedsBeyondQueueCapacity)
{
    ReplayOptions options;
    options.maxBatch = 1;
    options.maxQueue = 1;
    // Four simultaneous arrivals into 1 slot + 1 queue entry: the
    // last two are shed.
    const std::vector<ReplayRequest> trace{
        {0.0, 2, 1}, {0.0, 2, 1}, {0.0, 2, 1}, {0.0, 2, 1}};
    const auto result =
        replayTrace(tinyModel(), testHw(), options, trace);
    EXPECT_FALSE(result.requests[0].shed);
    EXPECT_FALSE(result.requests[1].shed);
    EXPECT_TRUE(result.requests[2].shed);
    EXPECT_TRUE(result.requests[3].shed);
    EXPECT_TRUE(result.requests[2].tokenTimesS.empty());
}

TEST(TraceReplayTest, TokenBudgetsAndMonotoneVirtualTime)
{
    ReplayOptions options;
    options.maxBatch = 2;
    options.maxQueue = 8;
    const auto trace = contendedTrace();
    const auto result =
        replayTrace(tinyModel(), testHw(), options, trace);
    ASSERT_EQ(result.requests.size(), trace.size());
    double lastEnd = 0.0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const auto &r = result.requests[i];
        ASSERT_FALSE(r.shed) << i;
        EXPECT_EQ(r.tokenTimesS.size(), trace[i].outputTokens) << i;
        EXPECT_GE(r.queueS, 0.0) << i;
        double prev = r.arrivalS;
        for (const double t : r.tokenTimesS) {
            EXPECT_GT(t, prev) << i;
            prev = t;
        }
        lastEnd = std::max(lastEnd, r.tokenTimesS.back());
    }
    EXPECT_DOUBLE_EQ(result.endS, lastEnd);
    EXPECT_EQ(result.stepSeconds.size(), result.steps);
    EXPECT_EQ(result.queueDepth.size(), result.steps);
    for (const double s : result.stepSeconds)
        EXPECT_GT(s, 0.0);
}

TEST(TraceReplayTest, IdleGapJumpsToNextArrival)
{
    ReplayOptions options;
    options.maxBatch = 4;
    // Two arrivals far apart: the second request's first token lands
    // shortly after its own arrival, not after an accumulated idle.
    const std::vector<ReplayRequest> trace{{0.0, 2, 1}, {10.0, 2, 1}};
    const auto result =
        replayTrace(tinyModel(), testHw(), options, trace);
    ASSERT_FALSE(result.requests[1].shed);
    EXPECT_GE(result.requests[1].tokenTimesS.front(), 10.0);
    EXPECT_LT(result.requests[1].tokenTimesS.front(), 10.0 + 1.0);
    EXPECT_DOUBLE_EQ(result.requests[1].queueS, 0.0);
}

/**
 * The load-bearing pin: a real serve::Engine on a VirtualClock,
 * stepped through the same trace and advanced by the identical
 * accelerator score per step, reproduces replayTrace() bit for bit —
 * shed set, queue-depth series, queue waits, and every token
 * completion time. Parameterized by the prefill chunk budget so the
 * chunked schedule (prompts split across steps, decode columns
 * interleaved) is pinned with the same rigor as the whole-prompt one.
 */
void
expectEngineMatchesReplay(std::size_t prefillChunkTokens)
{
    const OptConfig model = tinyModel();
    const HwConfig hw = testHw();
    ReplayOptions options;
    options.maxBatch = 2;
    options.maxQueue = 2;
    options.prefillChunkTokens = prefillChunkTokens;
    const auto trace = contendedTrace();
    const auto replay = replayTrace(model, hw, options, trace);

    serve::VirtualClock clock;
    serve::EngineOptions engineOptions;
    engineOptions.clock = &clock;
    engineOptions.maxBatch = options.maxBatch;
    engineOptions.maxQueue = options.maxQueue;
    engineOptions.prefillChunkTokens = options.prefillChunkTokens;
    engineOptions.model.weightBits = options.weightBits;
    engineOptions.model.groupSize = options.groupSize;
    engineOptions.model.useOffset = options.hasOffset;
    engineOptions.model.bcqIterations = 1;
    engineOptions.includeVector = options.includeVector;
    auto created = serve::Engine::create(model, engineOptions);
    ASSERT_TRUE(created.ok()) << created.status().toString();
    serve::Engine &engine = *created.value();

    const Accelerator accelerator(hw);
    WorkloadOptions workload;
    workload.weightBits = options.weightBits;
    workload.includeVector = options.includeVector;
    workload.groupSize = options.groupSize;
    workload.hasOffset = options.hasOffset;

    std::vector<bool> shed(trace.size(), false);
    std::vector<std::vector<double>> tokenTimes(trace.size());
    std::vector<std::size_t> queueDepth;
    std::unordered_map<serve::RequestId, std::size_t> indexOf;

    std::size_t next = 0;
    while (true) {
        while (next < trace.size() &&
               trace[next].arrivalS <= clock.now()) {
            serve::RequestOptions request;
            request.maxTokens = trace[next].outputTokens;
            request.promptTokens = trace[next].promptTokens;
            request.seed = 100 + next;
            const auto id = engine.submit(request);
            if (id.ok())
                indexOf.emplace(id.value(), next);
            else
                shed[next] = true;
            ++next;
        }
        if (engine.liveRequests() == 0 &&
            engine.queuedRequests() == 0) {
            if (next == trace.size())
                break;
            clock.set(trace[next].arrivalS);
            continue;
        }

        const auto stats = engine.step();
        ASSERT_TRUE(stats.ok()) << stats.status().toString();
        const serve::StepStats &step = stats.value();
        // Price this exact fused batch the way the replay does: the
        // executed step's own per-column causal context lengths
        // (prefill chunks included), in gather order.
        ASSERT_FALSE(step.columnContexts.empty());
        workload.batch = step.columnContexts.size();
        const double stepS =
            accelerator
                .runWorkload(decodeStepWorkload(model, workload,
                                                step.columnContexts))
                .seconds;
        clock.advance(stepS);
        for (const serve::RequestId id : step.decodedIds)
            tokenTimes[indexOf.at(id)].push_back(clock.now());
        queueDepth.push_back(step.queueDepth);
    }

    // Bit-identical schedule: shed set, queue depths, token times.
    ASSERT_EQ(queueDepth.size(), replay.steps);
    EXPECT_EQ(queueDepth, replay.queueDepth);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(shed[i], replay.requests[i].shed) << i;
        EXPECT_EQ(tokenTimes[i], replay.requests[i].tokenTimesS) << i;
    }
    // The engine's own queue-wait hook agrees with the replay.
    for (const auto &[id, i] : indexOf) {
        const auto snapshot = engine.poll(id);
        ASSERT_TRUE(snapshot.ok()) << i;
        EXPECT_DOUBLE_EQ(snapshot.value().stats.queueSeconds,
                         replay.requests[i].queueS)
            << i;
    }
}

TEST(TraceReplayTest, MatchesEngineOnVirtualClock)
{
    expectEngineMatchesReplay(/*prefillChunkTokens=*/0);
}

TEST(TraceReplayTest, MatchesEngineWithChunkedPrefill)
{
    // Chunk 2 splits every contendedTrace() prompt (3..8 tokens)
    // across several steps and stalls late prefills behind the budget.
    expectEngineMatchesReplay(/*prefillChunkTokens=*/2);
}

/**
 * The governed twin of the pin above: with a KV byte budget, the
 * EvictLongestIdle policy, injected allocation faults AND clock skew,
 * and a per-request deadline in play, the replay still reproduces the
 * engine's schedule bit for bit — including which requests are shed,
 * evicted, or expired, and when every surviving token lands.
 */
TEST(TraceReplayTest, GovernedReplayMatchesEngineOnVirtualClock)
{
    const OptConfig model = tinyModel();
    const HwConfig hw = testHw();
    // Simultaneous arrivals, so the engine's deadline base (submit
    // time) and the replay's (arrival time) coincide exactly.
    const std::vector<ReplayRequest> trace{
        {0.0, 4, 3, 0.0}, {0.0, 6, 2, 0.0}, {0.0, 5, 2, 0.0},
        {0.0, 3, 2, 1e-6}, {0.0, 4, 2, 0.0},
    };
    CountingFaultInjector faults(/*failEvery=*/7, /*skewS=*/0.05);

    ReplayOptions options;
    options.maxBatch = 2;
    options.maxQueue = 3;
    options.kvBlockTokens = 2;
    // Six blocks cannot hold two worst-case contexts at once, so the
    // reservation pass must evict or shed mid-trace.
    options.kvBudgetBytes = 6 * 2 * 2 * model.hidden * sizeof(double);
    options.policy = serve::DegradationPolicy::EvictLongestIdle;
    options.faults = &faults;
    const auto replay = replayTrace(model, hw, options, trace);

    // The scenario must actually exercise the governance paths, or
    // the pin below is vacuous.
    std::size_t evictions = 0, sheds = 0, misses = 0;
    for (const auto &r : replay.requests) {
        evictions += r.evictions;
        sheds += r.shed ? 1 : 0;
        misses += r.deadlineMiss ? 1 : 0;
    }
    EXPECT_GT(evictions + sheds, 0u);
    EXPECT_GT(misses, 0u);

    serve::VirtualClock clock;
    serve::EngineOptions engineOptions;
    engineOptions.clock = &clock;
    engineOptions.maxBatch = options.maxBatch;
    engineOptions.maxQueue = options.maxQueue;
    engineOptions.model.weightBits = options.weightBits;
    engineOptions.model.groupSize = options.groupSize;
    engineOptions.model.useOffset = options.hasOffset;
    engineOptions.model.bcqIterations = 1;
    engineOptions.includeVector = options.includeVector;
    engineOptions.kvBudgetBytes = options.kvBudgetBytes;
    engineOptions.kvBlockTokens = options.kvBlockTokens;
    engineOptions.policy = options.policy;
    engineOptions.faults = &faults;
    auto created = serve::Engine::create(model, engineOptions);
    ASSERT_TRUE(created.ok()) << created.status().toString();
    serve::Engine &engine = *created.value();

    const Accelerator accelerator(hw);
    WorkloadOptions workload;
    workload.weightBits = options.weightBits;
    workload.includeVector = options.includeVector;
    workload.groupSize = options.groupSize;
    workload.hasOffset = options.hasOffset;

    std::vector<bool> shed(trace.size(), false);
    std::vector<bool> deadlineMiss(trace.size(), false);
    std::vector<std::size_t> evicted(trace.size(), 0);
    std::vector<std::vector<double>> tokenTimes(trace.size());
    std::vector<std::size_t> queueDepth;
    std::unordered_map<serve::RequestId, std::size_t> indexOf;

    std::size_t next = 0, rounds = 0;
    while (true) {
        ASSERT_LT(++rounds, 10000u) << "engine failed to drain";
        while (next < trace.size() &&
               trace[next].arrivalS <= clock.now()) {
            serve::RequestOptions request;
            request.maxTokens = trace[next].outputTokens;
            request.promptTokens = trace[next].promptTokens;
            request.deadlineS = trace[next].deadlineS;
            request.seed = 100 + next;
            const auto id = engine.submit(request);
            if (id.ok())
                indexOf.emplace(id.value(), next);
            else
                shed[next] = true;
            ++next;
        }
        if (engine.liveRequests() == 0 &&
            engine.queuedRequests() == 0) {
            if (next == trace.size())
                break;
            clock.set(trace[next].arrivalS);
            continue;
        }

        const auto stats = engine.step();
        ASSERT_TRUE(stats.ok()) << stats.status().toString();
        const serve::StepStats &step = stats.value();
        // Same bookkeeping as the replay and the load driver: an
        // eviction discards the life's recorded tokens, shed and
        // deadline drops are terminal.
        for (const serve::RequestId id : step.evictedIds) {
            const std::size_t i = indexOf.at(id);
            tokenTimes[i].clear();
            evicted[i] += 1;
        }
        for (const serve::RequestId id : step.shedIds) {
            const std::size_t i = indexOf.at(id);
            tokenTimes[i].clear();
            shed[i] = true;
        }
        for (const serve::RequestId id : step.deadlineIds) {
            const std::size_t i = indexOf.at(id);
            tokenTimes[i].clear();
            deadlineMiss[i] = true;
        }
        // Governance-only steps do no work, advance no time, and are
        // not recorded — exactly like the replay's `continue`. A
        // pure-prefill step IS work and is priced like any other.
        if (step.prefillTokens + step.decodeTokens == 0)
            continue;
        workload.batch = step.columnContexts.size();
        const double stepS =
            accelerator
                .runWorkload(decodeStepWorkload(model, workload,
                                                step.columnContexts))
                .seconds;
        clock.advance(stepS);
        for (const serve::RequestId id : step.decodedIds)
            tokenTimes[indexOf.at(id)].push_back(clock.now());
        queueDepth.push_back(step.queueDepth);
    }

    ASSERT_EQ(queueDepth.size(), replay.steps);
    EXPECT_EQ(queueDepth, replay.queueDepth);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(shed[i], replay.requests[i].shed) << i;
        EXPECT_EQ(deadlineMiss[i], replay.requests[i].deadlineMiss)
            << i;
        EXPECT_EQ(evicted[i], replay.requests[i].evictions) << i;
        EXPECT_EQ(tokenTimes[i], replay.requests[i].tokenTimesS) << i;
    }
    for (const auto &[id, i] : indexOf) {
        const auto snapshot = engine.poll(id);
        ASSERT_TRUE(snapshot.ok()) << i;
        EXPECT_DOUBLE_EQ(snapshot.value().stats.queueSeconds,
                         replay.requests[i].queueS)
            << i;
    }
}

TEST(VirtualClockTest, AdvanceAndSetAreMonotone)
{
    serve::VirtualClock clock;
    EXPECT_DOUBLE_EQ(clock.now(), 0.0);
    clock.advance(1.5);
    EXPECT_DOUBLE_EQ(clock.now(), 1.5);
    clock.set(2.0);
    EXPECT_DOUBLE_EQ(clock.now(), 2.0);
    clock.advance(0.0);
    EXPECT_DOUBLE_EQ(clock.now(), 2.0);
}

TEST(VirtualClockTest, EngineStampsWaitFromTheInjectedClock)
{
    serve::VirtualClock clock;
    serve::EngineOptions options;
    options.clock = &clock;
    options.maxBatch = 1;
    options.model.weightBits = 2;
    options.model.bcqIterations = 1;
    auto created = serve::Engine::create(tinyModel(), options);
    ASSERT_TRUE(created.ok());
    serve::Engine &engine = *created.value();

    serve::RequestOptions first;
    first.maxTokens = 2;
    const auto a = engine.submit(first);
    ASSERT_TRUE(a.ok());
    clock.advance(3.0); // the request sits admitted-but-idle
    serve::RequestOptions second;
    second.maxTokens = 1;
    const auto b = engine.submit(second); // queued behind a
    ASSERT_TRUE(b.ok());

    ASSERT_TRUE(engine.step().ok()); // a decodes; wait stamped at 3.0
    clock.advance(1.0);
    ASSERT_TRUE(engine.step().ok()); // a retires, b admitted
    clock.advance(1.0);
    ASSERT_TRUE(engine.step().ok()); // b decodes; waited 0..5

    const auto snapA = engine.poll(a.value());
    ASSERT_TRUE(snapA.ok());
    EXPECT_DOUBLE_EQ(snapA.value().stats.queueSeconds, 3.0);
    // TTFT is stamped at the end of the first decoding step; the
    // virtual clock did not move inside step(), so it equals the wait.
    EXPECT_DOUBLE_EQ(snapA.value().stats.ttftSeconds, 3.0);

    const auto snapB = engine.poll(b.value());
    ASSERT_TRUE(snapB.ok());
    // b was submitted at t=3.0 and its first decoding step began at
    // t=5.0 (after two advances).
    EXPECT_DOUBLE_EQ(snapB.value().stats.queueSeconds, 2.0);
}

} // namespace
} // namespace figlut
